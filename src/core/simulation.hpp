#pragma once
// The coupled simulation driver — Octo-Tiger's top level (paper §4.2):
// a finite-volume hydro solver and an FMM gravity solver advancing an
// adaptive octree in lock-step, with the angular-momentum and spin-torque
// ledgers closing across the two solvers, optional GPU offload of the FMM
// kernels, and density-based regridding.

#include <functional>
#include <string>

#include <memory>

#include "amr/cost_model.hpp"
#include "amr/halo.hpp"
#include "amr/partition.hpp"
#include "amr/tree.hpp"
#include "fmm/solver.hpp"
#include "gpu/aggregator.hpp"
#include "gpu/device.hpp"
#include "hydro/update.hpp"
#include "physics/eos.hpp"

namespace octo::core {

/// Cost-driven dynamic load balancing (ISSUE 8). With `ranks > 0` the
/// driver maintains an SFC partition of the tree across that many modeled
/// ranks: every step feeds the APEX-calibrated cost model, and every
/// `every_steps` steps the split points are nudged toward the weighted ideal
/// under the bounded-migration constraint. Owner labels never influence the
/// numerics — a balanced run is bit-identical to an unbalanced one; what
/// changes is WHERE each subgrid's work is modeled/executed.
struct lb_options {
    int ranks = 0;        ///< 0 disables load balancing entirely
    long every_steps = 1; ///< rebalance cadence (steps)
    double max_migration_fraction = 0.10;
    amr::cost_params cost{};
};

struct sim_options {
    phys::ideal_gas_eos eos{5.0 / 3.0};
    amr::boundary_kind bc = amr::boundary_kind::outflow;
    double cfl = 0.4;
    bool self_gravity = true;
    fmm::am_mode conserve = fmm::am_mode::spin_deposit;
    gpu::device* device = nullptr; ///< offload FMM kernels when set (§5.1)
    /// External aggregation executor (may span a device_group). When null
    /// and `device` is set, the simulation owns a private one; FMM and the
    /// hydro flux sweeps share it — one launch point for all offload.
    gpu::aggregator* aggregator = nullptr;
    bool aggregate = true;         ///< false: one-stream-per-kernel A/B mode
    dvec3 omega{0, 0, 0};          ///< rotating-frame angular velocity
    bool vectorized = true;
    rt::thread_pool* pool = nullptr;
    /// Autotuned launch geometry (kernel/autotune.hpp): hydro sweeps its
    /// width/tile at first use; FMM and the aggregation batch are lookup-only
    /// (seeded by bench_kernels). Off = the fixed defaults everywhere.
    bool autotune = false;
    std::string machine = "host";  ///< autotune cache machine key
    lb_options lb{};               ///< dynamic load balancing (off by default)
};

/// Per-step energy/conservation report.
struct report {
    hydro::totals hydro;     ///< mass, momentum, L, gas energy, scalars
    double e_potential = 0;  ///< 0.5 sum m phi (gravity on) else 0
    double e_total = 0;      ///< egas + e_potential
    double rho_max = 0;
    dvec3 center_of_mass{0, 0, 0};
};

/// Periodic-checkpoint policy (ISSUE 5): production runs are driven end to
/// end by restart files (paper §6.2), so the driver itself writes them.
struct checkpoint_policy {
    long every_steps = 0; ///< 0 disables periodic checkpoints
    std::string path_prefix; ///< files land at <prefix>.<step>.ckpt
};

class simulation {
  public:
    simulation(amr::tree t, sim_options opt);

    /// Resume from a checkpoint written by a previous run: restores the
    /// tree, simulation time and step count, so the continued run is bit-
    /// identical to one that never stopped (asserted in tests/test_fault).
    static simulation restart(const std::string& checkpoint_path,
                              sim_options opt);

    /// Advance one coupled step (gravity solve + SSP-RK2 hydro step with
    /// source coupling); returns the dt taken. When a checkpoint policy is
    /// set, writes <prefix>.<step>.ckpt every `every_steps` steps (atomic,
    /// checksummed — io/checkpoint.hpp).
    double advance();

    void set_checkpoint_policy(checkpoint_policy p) { ckpt_ = std::move(p); }
    /// Path of the most recent periodic checkpoint ("" before the first).
    const std::string& last_checkpoint() const { return last_checkpoint_; }

    double time() const { return time_; }
    long step_count() const { return steps_; }

    amr::tree& grid() { return tree_; }
    const amr::tree& grid() const { return tree_; }
    const fmm::solver& gravity() const { return gravity_; }

    /// Refine leaves for which `criterion` holds (up to max_level), keeping
    /// the 2:1 balance, conservatively prolonging the evolved variables into
    /// new children. Returns the number of nodes refined.
    int regrid(const std::function<bool(amr::node_key, const amr::subgrid&)>& criterion,
               int max_level);

    /// Coarsen refined nodes whose eight children are all leaves and for
    /// which `criterion` holds, conservatively restricting the children's
    /// data into the parent (the angular-momentum bookkeeping of
    /// restrict_into_parent applies, so the ledger survives coarsening).
    /// Nodes whose removal would violate the 2:1 balance are skipped.
    /// Returns the number of nodes coarsened.
    int coarsen(const std::function<bool(amr::node_key, const amr::subgrid&)>& criterion);

    report diagnostics() const;

    // ---- load balancing (enabled by sim_options::lb.ranks > 0) -------------

    /// Stats of the partition the NEXT step will run under (weighted
    /// cost_per_rank filled once the cost model has observed a step).
    const amr::partition_stats& partition() const { return lb_parts_; }
    /// Result of the most recent rebalance (empty migrations before the
    /// first); the migration schedule consumers (dist::subgrid_migrator)
    /// execute.
    const amr::rebalance_result& last_rebalance() const { return last_rebalance_; }
    long rebalance_count() const { return rebalances_; }
    const amr::cost_model& load_model() const { return lb_cost_; }

  private:
    void refine_with_fields(amr::node_key k);

    amr::tree tree_;
    sim_options opt_;
    /// Declared before gravity_: the solver (and in-flight hydro items)
    /// reference it, so it must outlive them — destruction drains batches.
    std::unique_ptr<gpu::aggregator> own_agg_;
    gpu::aggregator* agg_ = nullptr;
    fmm::solver gravity_;
    double time_ = 0;
    long steps_ = 0;
    bool gravity_valid_ = false;
    checkpoint_policy ckpt_;
    std::string last_checkpoint_;
    amr::cost_model lb_cost_;
    amr::partition_stats lb_parts_;
    amr::rebalance_result last_rebalance_;
    long rebalances_ = 0;
};

} // namespace octo::core

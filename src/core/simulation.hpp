#pragma once
// The coupled simulation driver — Octo-Tiger's top level (paper §4.2):
// a finite-volume hydro solver and an FMM gravity solver advancing an
// adaptive octree in lock-step, with the angular-momentum and spin-torque
// ledgers closing across the two solvers, optional GPU offload of the FMM
// kernels, and density-based regridding.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "amr/cost_model.hpp"
#include "amr/halo.hpp"
#include "amr/partition.hpp"
#include "amr/tree.hpp"
#include "fmm/solver.hpp"
#include "gpu/aggregator.hpp"
#include "gpu/device.hpp"
#include "hydro/update.hpp"
#include "io/checkpoint.hpp"
#include "physics/eos.hpp"

namespace octo::core {

/// Cost-driven dynamic load balancing (ISSUE 8). With `ranks > 0` the
/// driver maintains an SFC partition of the tree across that many modeled
/// ranks: every step feeds the APEX-calibrated cost model, and every
/// `every_steps` steps the split points are nudged toward the weighted ideal
/// under the bounded-migration constraint. Owner labels never influence the
/// numerics — a balanced run is bit-identical to an unbalanced one; what
/// changes is WHERE each subgrid's work is modeled/executed.
struct lb_options {
    int ranks = 0;        ///< 0 disables load balancing entirely
    long every_steps = 1; ///< rebalance cadence (steps)
    double max_migration_fraction = 0.10;
    amr::cost_params cost{};
};

struct sim_options {
    phys::ideal_gas_eos eos{5.0 / 3.0};
    amr::boundary_kind bc = amr::boundary_kind::outflow;
    double cfl = 0.4;
    bool self_gravity = true;
    fmm::am_mode conserve = fmm::am_mode::spin_deposit;
    gpu::device* device = nullptr; ///< offload FMM kernels when set (§5.1)
    /// External aggregation executor (may span a device_group). When null
    /// and `device` is set, the simulation owns a private one; FMM and the
    /// hydro flux sweeps share it — one launch point for all offload.
    gpu::aggregator* aggregator = nullptr;
    bool aggregate = true;         ///< false: one-stream-per-kernel A/B mode
    dvec3 omega{0, 0, 0};          ///< rotating-frame angular velocity
    bool vectorized = true;
    rt::thread_pool* pool = nullptr;
    /// Autotuned launch geometry (kernel/autotune.hpp): hydro sweeps its
    /// width/tile at first use; FMM and the aggregation batch are lookup-only
    /// (seeded by bench_kernels). Off = the fixed defaults everywhere.
    bool autotune = false;
    std::string machine = "host";  ///< autotune cache machine key
    lb_options lb{};               ///< dynamic load balancing (off by default)
};

/// Per-step energy/conservation report.
struct report {
    hydro::totals hydro;     ///< mass, momentum, L, gas energy, scalars
    double e_potential = 0;  ///< 0.5 sum m phi (gravity on) else 0
    double e_total = 0;      ///< egas + e_potential
    double rho_max = 0;
    dvec3 center_of_mass{0, 0, 0};
};

/// Periodic-checkpoint policy (ISSUE 5, incremental deltas ISSUE 10):
/// production runs are driven end to end by restart files (paper §6.2), so
/// the driver itself writes them. With `full_every > 1` only every
/// full_every-th periodic checkpoint is a full image; the ones between are
/// incremental DELTAS (only leaves whose content CRC changed since the last
/// full image, io/checkpoint.hpp) — the restartable state is then the CHAIN
/// {last full, last delta}, exposed by simulation::checkpoint_chain().
struct checkpoint_policy {
    long every_steps = 0; ///< 0 disables periodic checkpoints
    std::string path_prefix; ///< fulls at <prefix>.<step>.ckpt, deltas .dckpt
    /// Every Nth periodic checkpoint is full; the rest are deltas against the
    /// most recent full image. 1 (default) = all full, the ISSUE 5 behavior.
    long full_every = 1;
};

class simulation {
  public:
    simulation(amr::tree t, sim_options opt);

    /// Resume from a checkpoint written by a previous run: restores the
    /// tree, simulation time and step count, so the continued run is bit-
    /// identical to one that never stopped (asserted in tests/test_fault).
    static simulation restart(const std::string& checkpoint_path,
                              sim_options opt);

    /// Resume from a checkpoint CHAIN ({full} or {full, delta...}) written
    /// under a full_every > 1 policy. With one element this is restart().
    static simulation restart_chain(const std::vector<std::string>& chain,
                                    sim_options opt);

    /// Elastic recovery (ISSUE 10): restore from the chain AND repartition
    /// the whole curve onto `live_ranks` — the survivors' membership view
    /// after a node death. The sim keeps using only these ranks for every
    /// later rebalance/regrid split. Bumps the `lb.recoveries` APEX counter
    /// and publishes the restore+repartition span as the
    /// `sim.time_to_recover_us` gauge. The recovered run is bit-identical to
    /// a never-killed restart_chain() from the same chain: owner labels
    /// never touch the numerics, and checkpoint files carry no owner state.
    static simulation recover(const std::vector<std::string>& chain,
                              sim_options opt, std::vector<int> live_ranks);

    /// Advance one coupled step (gravity solve + SSP-RK2 hydro step with
    /// source coupling); returns the dt taken. When a checkpoint policy is
    /// set, writes <prefix>.<step>.ckpt every `every_steps` steps (atomic,
    /// checksummed — io/checkpoint.hpp).
    double advance();

    void set_checkpoint_policy(checkpoint_policy p) { ckpt_ = std::move(p); }
    /// Path of the most recent periodic checkpoint ("" before the first).
    const std::string& last_checkpoint() const { return last_checkpoint_; }
    /// The minimal file set that restores the latest periodic checkpoint:
    /// {full} right after a full one, {full, delta} after a delta (later
    /// deltas supersede earlier ones — each is base-relative). Empty before
    /// the first periodic checkpoint. Feed to restart_chain()/recover().
    const std::vector<std::string>& checkpoint_chain() const {
        return ckpt_chain_;
    }

    double time() const { return time_; }
    long step_count() const { return steps_; }

    amr::tree& grid() { return tree_; }
    const amr::tree& grid() const { return tree_; }
    const fmm::solver& gravity() const { return gravity_; }

    /// Refine leaves for which `criterion` holds (up to max_level), keeping
    /// the 2:1 balance, conservatively prolonging the evolved variables into
    /// new children. Returns the number of nodes refined.
    int regrid(const std::function<bool(amr::node_key, const amr::subgrid&)>& criterion,
               int max_level);

    /// Coarsen refined nodes whose eight children are all leaves and for
    /// which `criterion` holds, conservatively restricting the children's
    /// data into the parent (the angular-momentum bookkeeping of
    /// restrict_into_parent applies, so the ledger survives coarsening).
    /// Nodes whose removal would violate the 2:1 balance are skipped.
    /// Returns the number of nodes coarsened.
    int coarsen(const std::function<bool(amr::node_key, const amr::subgrid&)>& criterion);

    report diagnostics() const;

    // ---- load balancing (enabled by sim_options::lb.ranks > 0) -------------

    /// Stats of the partition the NEXT step will run under (weighted
    /// cost_per_rank filled once the cost model has observed a step).
    const amr::partition_stats& partition() const { return lb_parts_; }
    /// Result of the most recent rebalance (empty migrations before the
    /// first); the migration schedule consumers (dist::subgrid_migrator)
    /// execute.
    const amr::rebalance_result& last_rebalance() const { return last_rebalance_; }
    long rebalance_count() const { return rebalances_; }
    const amr::cost_model& load_model() const { return lb_cost_; }

    // ---- elastic recovery (ISSUE 10) ---------------------------------------

    /// The ranks this sim partitions over. Empty = all of [0, lb.ranks) —
    /// the common, never-recovered case; non-empty after recover().
    const std::vector<int>& live_ranks() const { return live_ranks_; }
    /// Schedule of the recovery repartition (empty unless built by
    /// recover()): `from` may name the dead rank — those subgrids are the
    /// ones reload()ed from the chain instead of migrated from a live store.
    const amr::recovery_partition& last_recovery() const {
        return last_recovery_;
    }

  private:
    void refine_with_fields(amr::node_key k);
    void write_periodic_checkpoint();
    /// Weighted full split over the live ranks (all ranks before recovery).
    void repartition_weighted();

    amr::tree tree_;
    sim_options opt_;
    /// Declared before gravity_: the solver (and in-flight hydro items)
    /// reference it, so it must outlive them — destruction drains batches.
    std::unique_ptr<gpu::aggregator> own_agg_;
    gpu::aggregator* agg_ = nullptr;
    fmm::solver gravity_;
    double time_ = 0;
    long steps_ = 0;
    bool gravity_valid_ = false;
    checkpoint_policy ckpt_;
    std::string last_checkpoint_;
    /// {last full} or {last full, last delta} — see checkpoint_chain().
    std::vector<std::string> ckpt_chain_;
    /// Content CRCs of every leaf at the last FULL checkpoint — the base the
    /// next delta diffs against (io::leaf_digest_map).
    io::leaf_digest_map ckpt_base_digests_;
    long ckpt_count_ = 0; ///< periodic checkpoints written (full + delta)
    amr::cost_model lb_cost_;
    amr::partition_stats lb_parts_;
    amr::rebalance_result last_rebalance_;
    long rebalances_ = 0;
    std::vector<int> live_ranks_; ///< empty = [0, lb.ranks); set by recover()
    amr::recovery_partition last_recovery_;
};

} // namespace octo::core

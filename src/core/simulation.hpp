#pragma once
// The coupled simulation driver — Octo-Tiger's top level (paper §4.2):
// a finite-volume hydro solver and an FMM gravity solver advancing an
// adaptive octree in lock-step, with the angular-momentum and spin-torque
// ledgers closing across the two solvers, optional GPU offload of the FMM
// kernels, and density-based regridding.

#include <functional>

#include "amr/halo.hpp"
#include "amr/tree.hpp"
#include "fmm/solver.hpp"
#include "gpu/device.hpp"
#include "hydro/update.hpp"
#include "physics/eos.hpp"

namespace octo::core {

struct sim_options {
    phys::ideal_gas_eos eos{5.0 / 3.0};
    amr::boundary_kind bc = amr::boundary_kind::outflow;
    double cfl = 0.4;
    bool self_gravity = true;
    fmm::am_mode conserve = fmm::am_mode::spin_deposit;
    gpu::device* device = nullptr; ///< offload FMM kernels when set (§5.1)
    dvec3 omega{0, 0, 0};          ///< rotating-frame angular velocity
    bool vectorized = true;
    rt::thread_pool* pool = nullptr;
};

/// Per-step energy/conservation report.
struct report {
    hydro::totals hydro;     ///< mass, momentum, L, gas energy, scalars
    double e_potential = 0;  ///< 0.5 sum m phi (gravity on) else 0
    double e_total = 0;      ///< egas + e_potential
    double rho_max = 0;
    dvec3 center_of_mass{0, 0, 0};
};

class simulation {
  public:
    simulation(amr::tree t, sim_options opt);

    /// Advance one coupled step (gravity solve + SSP-RK2 hydro step with
    /// source coupling); returns the dt taken.
    double advance();

    double time() const { return time_; }
    long step_count() const { return steps_; }

    amr::tree& grid() { return tree_; }
    const amr::tree& grid() const { return tree_; }
    const fmm::solver& gravity() const { return gravity_; }

    /// Refine leaves for which `criterion` holds (up to max_level), keeping
    /// the 2:1 balance, conservatively prolonging the evolved variables into
    /// new children. Returns the number of nodes refined.
    int regrid(const std::function<bool(amr::node_key, const amr::subgrid&)>& criterion,
               int max_level);

    /// Coarsen refined nodes whose eight children are all leaves and for
    /// which `criterion` holds, conservatively restricting the children's
    /// data into the parent (the angular-momentum bookkeeping of
    /// restrict_into_parent applies, so the ledger survives coarsening).
    /// Nodes whose removal would violate the 2:1 balance are skipped.
    /// Returns the number of nodes coarsened.
    int coarsen(const std::function<bool(amr::node_key, const amr::subgrid&)>& criterion);

    report diagnostics() const;

  private:
    void refine_with_fields(amr::node_key k);

    amr::tree tree_;
    sim_options opt_;
    fmm::solver gravity_;
    double time_ = 0;
    long steps_ = 0;
    bool gravity_valid_ = false;
};

} // namespace octo::core

#include "core/scenario.hpp"

#include <algorithm>
#include <cmath>

#include "physics/units.hpp"
#include "io/writers.hpp"
#include "scf/scf.hpp"

namespace octo::core {

using namespace octo::amr;

simulation make_v1309(const v1309_config& cfg, sim_options opt) {
    const double a = cfg.separation;

    // Stage 1: solve the SCF model on a dedicated well-resolved tree
    // covering just the binary (edge ~3 separations, depth 2 = 32^3 cells).
    amr::tree scf_tree = scf::make_uniform_tree(3.0 * a, 2);
    scf::binary_params sp;
    sp.x1 = -0.42 * a;
    sp.x2 = 0.58 * a;  // separation x2 - x1 = a
    sp.r1 = 0.42 * a;
    sp.r2 = 0.27 * a;
    sp.rho_c1 = 1.0;
    sp.rho_c2 = 0.45;
    sp.n = 1.5;
    sp.max_iterations = cfg.scf_iterations;
    const auto model = scf::solve_binary(scf_tree, sp);

    // The SCF model carries INERTIAL-frame velocities (rigid rotation at the
    // orbital frequency), so the binary orbits across the grid and the
    // machine-precision angular-momentum ledger applies directly. The
    // paper's rotating mesh ("The grid is rotating about the z-axis") is a
    // coordinate choice; callers wanting the corotating frame can set
    // opt.omega = model.omega and zero the velocities instead (the
    // rotating-frame source terms are exercised by the hydro tests).
    (void)model;

    // Stage 2: build the full domain (the paper's grid is ~160 separations
    // across; scaled runs shrink that) and refine it around the binary by
    // the analytic density BEFORE sampling, so the stars keep their SCF
    // resolution on the final leaves.
    const double edge = cfg.domain_over_separation * a;
    amr::tree t = scf::make_uniform_tree(edge, cfg.base_depth);
    t.refine_by(
        [&](node_key k, const box_geometry& g) {
            const int level = key_level(k);
            if (level >= cfg.max_level) return false;
            // Refine boxes overlapping the SCF region, progressively
            // tighter around the stars at deeper levels.
            const double block = g.dx * INX;
            const dvec3 center = g.origin + dvec3{block, block, block} * 0.5;
            const double d = norm(center);
            const double radius = 2.5 * a / (1 << std::max(level - 1, 0)) +
                                  0.87 * block; // half-diagonal margin
            return d < radius;
        },
        cfg.max_level);
    for (const auto k : t.leaves_sfc()) t.ensure_fields(k);

    // Sample the SCF solution onto the final leaves (atmosphere outside).
    const double scf_half = 1.5 * a;
    for (const auto k : t.leaves_sfc()) {
        auto& g = *t.node(k).fields;
        for (int i = 0; i < INX; ++i)
            for (int j = 0; j < INX; ++j)
                for (int kk = 0; kk < INX; ++kk) {
                    const dvec3 r = g.geom.cell_center(i, j, kk);
                    const bool inside = std::abs(r.x) < scf_half &&
                                        std::abs(r.y) < scf_half &&
                                        std::abs(r.z) < scf_half;
                    for (int f = 0; f < n_fields; ++f) {
                        g.interior(f, i, j, kk) =
                            inside ? io::sample(scf_tree, f, r) : 0.0;
                    }
                    if (!inside || g.interior(f_rho, i, j, kk) <= 0.0) {
                        g.interior(f_rho, i, j, kk) = 1e-10;
                        g.interior(f_egas, i, j, kk) = 1e-13;
                        g.interior(f_tau, i, j, kk) = 1e-13;
                        g.interior(first_passive + 4, i, j, kk) = 1e-10;
                    }
                }
    }
    return simulation(std::move(t), opt);
}

double v1309_analytic_density(const dvec3& r) {
    // Two polytrope-shaped stars (density ~ (1 - (d/R)^2)^n near their
    // centers) at the paper's geometry, in units of the separation a:
    // primary of radius ~0.3a at x=-0.09a (mass ratio puts the COM there),
    // donor of radius ~0.18a at x=+0.91a, plus a common envelope around
    // both and a thin atmosphere filling the domain.
    const dvec3 c1{-0.09, 0, 0};
    const dvec3 c2{0.91, 0, 0};
    const double R1 = 0.30, R2 = 0.18;
    const double n = 1.5;

    double rho = 1e-12; // atmosphere
    const double d1 = norm(r - c1) / R1;
    if (d1 < 1.0) rho += std::pow(1.0 - d1 * d1, n);
    const double d2 = norm(r - c2) / R2;
    if (d2 < 1.0) rho += 0.45 * std::pow(1.0 - d2 * d2, n);
    // Common envelope: shallow profile around the pair.
    const dvec3 ce{0.5 * (c1.x + c2.x), 0, 0};
    const double de = norm(r - ce) / 1.2;
    if (de < 1.0) rho += 1e-4 * std::pow(1.0 - de * de, 1.0);
    return rho;
}

double v1309_refine_threshold(int level, int finest_level) {
    // Deeper levels require higher density: the stars' cores end up at the
    // finest levels while the envelope stays coarse, reproducing the paper's
    // nested refinement regimes (§6: stars to 12, accretor core 13, donor
    // core 14 for the level-14 run). The thresholds are geometric in the
    // level distance from the finest.
    const int d = finest_level - level;
    if (d >= 8) return 0.0; // always refine far from the finest level
    return 1.2e-4 * std::pow(10.0, -0.45 * d);
}

} // namespace octo::core

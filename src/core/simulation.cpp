#include "core/simulation.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "amr/prolong.hpp"
#include "io/checkpoint.hpp"
#include "kernel/autotune.hpp"
#include "runtime/apex.hpp"
#include "support/assert.hpp"

namespace octo::core {

using namespace octo::amr;

namespace {

/// Options for the simulation-owned aggregator: the fixed defaults (batch
/// 16, flush 100us), or the tuned fmm.same_level batch and age-flush timeout
/// when autotuning and the cache has an entry for this machine.
gpu::aggregator_options sim_agg_options(const sim_options& opt) {
    gpu::aggregator_options ao;
    ao.max_batch = opt.aggregate ? 16u : 1u;
    if (opt.autotune) {
        if (auto tc = kernel::global_autotune().lookup(
                opt.machine, "fmm.same_level", kernel::backend_kind::gpu)) {
            if (opt.aggregate) ao.max_batch = std::max(1u, tc->gpu_batch);
            ao.flush_after_us = tc->flush_us;
        }
    }
    return ao;
}

} // namespace

simulation::simulation(tree t, sim_options opt)
    : tree_(std::move(t)),
      opt_(opt),
      own_agg_(opt.aggregator == nullptr && opt.device != nullptr
                   ? std::make_unique<gpu::aggregator>(*opt.device,
                                                       sim_agg_options(opt))
                   : nullptr),
      agg_(opt.aggregator != nullptr ? opt.aggregator : own_agg_.get()),
      gravity_({.conserve = opt.conserve,
                .vectorized = opt.vectorized,
                .device = opt.device,
                .pool = opt.pool,
                .aggregator = agg_,
                .autotune = opt.autotune,
                .machine = opt.machine}),
      lb_cost_(opt.lb.cost) {
    if (opt_.lb.ranks > 0) {
        // Seed with the paper's equal-count split; the cost model refines the
        // weights as steps are observed.
        lb_parts_ = partition_sfc(tree_, opt_.lb.ranks);
    }
}

simulation simulation::restart(const std::string& checkpoint_path,
                               sim_options opt) {
    io::checkpoint_data ck = io::read_checkpoint_full(checkpoint_path);
    simulation s(std::move(ck.t), opt);
    s.time_ = ck.meta.time;
    s.steps_ = ck.meta.steps;
    return s;
}

simulation simulation::restart_chain(const std::vector<std::string>& chain,
                                     sim_options opt) {
    io::checkpoint_data ck = io::read_checkpoint_chain(chain);
    simulation s(std::move(ck.t), opt);
    s.time_ = ck.meta.time;
    s.steps_ = ck.meta.steps;
    return s;
}

simulation simulation::recover(const std::vector<std::string>& chain,
                               sim_options opt,
                               std::vector<int> live_ranks) {
    const auto t0 = std::chrono::steady_clock::now();
    io::checkpoint_data ck = io::read_checkpoint_chain(chain);
    simulation s(std::move(ck.t), opt);
    s.time_ = ck.meta.time;
    s.steps_ = ck.meta.steps;
    if (opt.lb.ranks > 0) {
        s.live_ranks_ = std::move(live_ranks);
        // Cold cost model, exactly like any restart: equal weights. The
        // EWMA re-learns as recovered steps are observed.
        const std::vector<double> w(s.tree_.leaves_sfc().size(), 1.0);
        s.last_recovery_ = repartition_onto(s.tree_, s.live_ranks_, w);
        s.lb_parts_ = s.last_recovery_.stats;
    }
    rt::apex_count("lb.recoveries");
    rt::apex_gauge("sim.time_to_recover_us",
                   static_cast<double>(
                       std::chrono::duration_cast<std::chrono::microseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count()));
    return s;
}

double simulation::advance() {
    hydro::step_options h;
    h.eos = opt_.eos;
    h.bc = opt_.bc;
    h.cfl = opt_.cfl;
    h.omega = opt_.omega;
    h.pool = opt_.pool;
    h.aggregator = agg_;
    h.autotune = opt_.autotune;
    h.machine = opt_.machine;
    if (opt_.self_gravity) {
        // Gravity is (re)solved before EVERY RK stage so the source terms
        // act on exactly the density the FMM saw — this is what closes the
        // momentum/angular-momentum ledger to rounding (paper §4.2, and the
        // FMM-per-timestep coupling of §4.3).
        h.before_stage = [this] {
            gravity_.solve(tree_);
            gravity_valid_ = true;
        };
        h.gravity = [this](node_key k) -> std::optional<hydro::gravity_field> {
            const auto& g = gravity_.gravity(k);
            return hydro::gravity_field{g.gx.data(),    g.gy.data(),
                                        g.gz.data(),    g.tq[0].data(),
                                        g.tq[1].data(), g.tq[2].data()};
        };
    }
    const double dt = hydro::step(tree_, h);
    time_ += dt;
    ++steps_;
    if (opt_.lb.ranks > 0) {
        // Feed the cost model with the partition this step actually ran
        // under, then (on cadence) nudge the split points. Owner labels are
        // bookkeeping only — the numerics above never consult them, so a
        // load-balanced run stays bit-identical to an unbalanced one.
        lb_cost_.observe_step(tree_, lb_parts_);
        if (opt_.lb.every_steps > 0 && steps_ % opt_.lb.every_steps == 0) {
            const rebalance_options ropt{.max_migration_fraction =
                                             opt_.lb.max_migration_fraction};
            last_rebalance_ =
                live_ranks_.empty()
                    ? rebalance_sfc(tree_, opt_.lb.ranks,
                                    lb_cost_.leaf_weights(tree_), ropt)
                    : rebalance_sfc(tree_, live_ranks_,
                                    lb_cost_.leaf_weights(tree_), ropt);
            lb_parts_ = last_rebalance_.stats;
            ++rebalances_;
        }
    }
    if (ckpt_.every_steps > 0 && steps_ % ckpt_.every_steps == 0) {
        write_periodic_checkpoint();
    }
    return dt;
}

void simulation::write_periodic_checkpoint() {
    const std::string stem = ckpt_.path_prefix + "." + std::to_string(steps_);
    // The first periodic checkpoint is always full (a delta needs a base),
    // as is every full_every-th one after it.
    const bool full = ckpt_.full_every <= 1 || ckpt_chain_.empty() ||
                      ckpt_count_ % ckpt_.full_every == 0;
    std::string path;
    if (full) {
        path = stem + ".ckpt";
        io::write_checkpoint(tree_, path, {.time = time_, .steps = steps_});
        ckpt_base_digests_ = io::leaf_digests(tree_);
        ckpt_chain_ = {path};
    } else {
        path = stem + ".dckpt";
        io::write_checkpoint_delta(tree_, path, ckpt_base_digests_,
                                   {.time = time_, .steps = steps_});
        // Deltas are base-relative: the newest one supersedes any earlier
        // delta, so the chain never grows past {full, delta}.
        ckpt_chain_.resize(1);
        ckpt_chain_.push_back(path);
    }
    ++ckpt_count_;
    last_checkpoint_ = std::move(path);
}

void simulation::repartition_weighted() {
    if (live_ranks_.empty()) {
        lb_parts_ = partition_sfc_weighted(tree_, opt_.lb.ranks,
                                           lb_cost_.leaf_weights(tree_));
    } else {
        lb_parts_ = partition_sfc_weighted(tree_, live_ranks_,
                                           lb_cost_.leaf_weights(tree_));
    }
}

void simulation::refine_with_fields(node_key k) {
    auto& parent = *tree_.node(k).fields;
    tree_.refine(k);
    for (int c = 0; c < 8; ++c) {
        auto& child = tree_.ensure_fields(key_child(k, c));
        prolong_from_parent(parent, c, child, /*slopes=*/true);
    }
}

int simulation::regrid(
    const std::function<bool(node_key, const subgrid&)>& criterion, int max_level) {
    int refined = 0;
    bool changed = true;
    while (changed) {
        changed = false;
        fill_all_ghosts(tree_, opt_.bc); // prolongation slopes need ghosts
        // Criterion-driven refinement.
        for (const node_key k : tree_.leaves_sfc()) {
            if (key_level(k) >= max_level) continue;
            if (criterion(k, *tree_.node(k).fields)) {
                refine_with_fields(k);
                ++refined;
                changed = true;
            }
        }
        // Restore 2:1 balance, prolonging fields into every node the
        // balancing creates.
        bool rebalanced = true;
        while (rebalanced) {
            rebalanced = false;
            for (int level = tree_.max_level(); level >= 1; --level) {
                // refine_with_fields() appends to this level's list while we
                // scan it: iterate by index, re-fetching the vector each
                // step, instead of copying the whole list every sweep.
                // Appended nodes are simply visited later in the same pass.
                for (std::size_t idx = 0; idx < tree_.levels()[level].size();
                     ++idx) {
                    const node_key k = tree_.levels()[level][idx];
                    if (!tree_.node(k).refined) continue;
                    for (int dx = -1; dx <= 1; ++dx)
                        for (int dy = -1; dy <= 1; ++dy)
                            for (int dz = -1; dz <= 1; ++dz) {
                                if (dx == 0 && dy == 0 && dz == 0) continue;
                                const node_key nb =
                                    key_neighbor(k, {dx, dy, dz});
                                if (nb == invalid_key || tree_.contains(nb)) {
                                    continue;
                                }
                                // Refine the deepest existing ancestor leaf.
                                node_key anc = key_parent(nb);
                                while (!tree_.contains(anc)) {
                                    anc = key_parent(anc);
                                }
                                OCTO_ASSERT(!tree_.node(anc).refined);
                                refine_with_fields(anc);
                                ++refined;
                                rebalanced = true;
                                changed = true;
                            }
                }
            }
        }
    }
    gravity_valid_ = false;
    if (opt_.lb.ranks > 0 && refined > 0) {
        // New children are born with owner 0; restore a contiguous weighted
        // partition (a structural change already invalidates halo plans and
        // FMM workspaces, so a full re-split costs nothing extra here).
        repartition_weighted();
    }
    return refined;
}

int simulation::coarsen(
    const std::function<bool(node_key, const subgrid&)>& criterion) {
    int coarsened = 0;
    // Iterate coarsest-refined first so cascading coarsening in one call is
    // possible. derefine(k) mutates only the CHILDREN's level list (and may
    // trim empty trailing levels), never the non-empty list being scanned —
    // so this level's list can be iterated in place, no copy needed.
    for (int level = tree_.max_level() - 1; level >= 0; --level) {
        if (level >= static_cast<int>(tree_.levels().size())) continue;
        const std::vector<node_key>& at_level = tree_.levels()[level];
        for (const node_key k : at_level) {
            if (!tree_.contains(k) || !tree_.node(k).refined) continue;
            bool all_leaf_children = true;
            for (int c = 0; c < 8 && all_leaf_children; ++c) {
                all_leaf_children = !tree_.node(key_child(k, c)).refined;
            }
            if (!all_leaf_children) continue;
            if (!criterion(k, tree_.ensure_fields(k))) continue;
            // 2:1 safety: no neighbor of any CHILD (outside this node) may
            // be refined — a refined child-level neighbor requires the
            // children to exist.
            bool safe = true;
            for (int c = 0; c < 8 && safe; ++c) {
                const node_key ck = key_child(k, c);
                for (int dx = -1; dx <= 1 && safe; ++dx)
                    for (int dy = -1; dy <= 1 && safe; ++dy)
                        for (int dz = -1; dz <= 1 && safe; ++dz) {
                            if (dx == 0 && dy == 0 && dz == 0) continue;
                            const node_key nb = key_neighbor(ck, {dx, dy, dz});
                            if (nb == invalid_key || !tree_.contains(nb)) {
                                continue;
                            }
                            if (key_parent(nb) == k) continue; // sibling
                            if (tree_.node(nb).refined) safe = false;
                        }
            }
            if (!safe) continue;

            // Conservative restriction, then drop the children.
            subgrid& parent = tree_.ensure_fields(k);
            for (int c = 0; c < 8; ++c) {
                restrict_into_parent(*tree_.node(key_child(k, c)).fields, c,
                                     parent);
            }
            tree_.derefine(k);
            ++coarsened;
        }
    }
    if (coarsened > 0) {
        gravity_valid_ = false;
        if (opt_.lb.ranks > 0) {
            repartition_weighted();
        }
    }
    return coarsened;
}

report simulation::diagnostics() const {
    report r;
    r.hydro = hydro::compute_totals(tree_);
    if (gravity_valid_) {
        r.e_potential = gravity_.potential_energy(tree_);
    }
    r.e_total = r.hydro.egas + r.e_potential;

    double mass = 0;
    dvec3 com{0, 0, 0};
    for (const auto& level : tree_.levels()) {
        for (const node_key k : level) {
            if (tree_.node(k).refined) continue;
            const auto& g = *tree_.node(k).fields;
            const double V = g.geom.cell_volume();
            for (int i = 0; i < INX; ++i)
                for (int j = 0; j < INX; ++j)
                    for (int kk = 0; kk < INX; ++kk) {
                        const double m = g.interior(f_rho, i, j, kk) * V;
                        mass += m;
                        com += m * g.geom.cell_center(i, j, kk);
                        r.rho_max = std::max(r.rho_max,
                                             g.interior(f_rho, i, j, kk));
                    }
        }
    }
    if (mass > 0) com /= mass;
    r.center_of_mass = com;
    return r;
}

} // namespace octo::core

#pragma once
// Simulated CUDA device — the GPU substitution described in DESIGN.md.
//
// Paper §5.1: Octo-Tiger launches many *small* FMM kernels (8 blocks × 64
// threads) on up to 128 CUDA streams per GPU. For every stream event an HPX
// future is created that becomes ready once operations in the stream have
// finished; this integrates the GPU into the task scheduler. When all
// streams are busy, the kernel is executed by the launching CPU thread
// instead.
//
// No physical GPU exists in this environment, so `octo::gpu::device`
// reproduces the *semantics*: a fixed pool of streams, asynchronous kernel
// launches that really execute (on a small dedicated worker pool, standing
// in for the device), and completion futures compatible with the runtime.
// Timing for the paper's Table 2 is produced by the machine model in
// src/cluster, parameterized by the device_spec below; the futures/stream
// plumbing here is what the core simulation actually runs on, so results
// are bit-identical between the CPU and "GPU" paths.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "runtime/future.hpp"
#include "runtime/thread_pool.hpp"
#include "support/flops.hpp"

namespace octo::gpu {

/// Performance description of a device; used by the machine model for the
/// node-level experiment (Table 2) and by examples for reporting.
struct device_spec {
    std::string name;
    double peak_gflops = 0.0;       ///< double-precision peak
    unsigned num_sms = 0;           ///< streaming multiprocessors
    unsigned max_streams = 128;     ///< concurrent CUDA streams (paper: 128)
    unsigned blocks_per_kernel = 8; ///< FMM kernels launch 8 blocks (paper §5.1)
    double launch_overhead_us = 5.0;

    /// Number of kernels that can execute concurrently at full rate.
    unsigned kernel_slots() const { return num_sms / blocks_per_kernel; }
    /// Modeled rate of a single kernel occupying blocks_per_kernel SMs.
    double per_kernel_gflops() const {
        return peak_gflops * blocks_per_kernel / num_sms;
    }
};

/// NVIDIA P100 (Piz Daint node GPU; Table 3): 4.7 TF/s DP, 56 SMs.
device_spec p100();
/// NVIDIA V100 (PCI-E, Table 2): 7 TF/s DP, 80 SMs.
device_spec v100();

/// RAII stream lease: releases the stream back to the device when the last
/// launched kernel completes.
class stream_lease;

class device {
  public:
    /// `spec` describes the modeled hardware; `nworkers` is the number of
    /// host threads standing in for the device's execution engine.
    explicit device(device_spec spec, unsigned nworkers = 2);
    ~device();

    const device_spec& spec() const { return spec_; }

    /// Acquire an idle stream, or nullopt when all are busy — the condition
    /// under which Octo-Tiger falls back to CPU execution (§5.1).
    std::optional<stream_lease> try_acquire_stream();

    unsigned streams_in_use() const { return in_use_.load(std::memory_order_relaxed); }
    unsigned max_streams() const { return spec_.max_streams; }

    /// Total kernels executed by this device.
    std::uint64_t kernels_executed() const {
        return kernels_.load(std::memory_order_relaxed);
    }

  private:
    friend class stream_lease;

    std::optional<stream_lease> acquire_impl();
    rt::future<void> enqueue(std::function<void()> kernel, std::uint64_t flops,
                             kernel_class kc);
    void release_stream();

    device_spec spec_;
    std::unique_ptr<rt::thread_pool> workers_;
    std::atomic<unsigned> in_use_{0};
    std::atomic<std::uint64_t> kernels_{0};
};

class stream_lease {
  public:
    stream_lease(stream_lease&& o) noexcept : dev_(o.dev_) { o.dev_ = nullptr; }
    stream_lease& operator=(stream_lease&& o) noexcept {
        if (this != &o) {
            release();
            dev_ = o.dev_;
            o.dev_ = nullptr;
        }
        return *this;
    }
    stream_lease(const stream_lease&) = delete;
    stream_lease& operator=(const stream_lease&) = delete;
    ~stream_lease() { release(); }

    /// Launch `kernel` asynchronously on this stream. The returned future
    /// becomes ready when the kernel has executed (the CUDA-event→future
    /// bridge of paper §5.1). The stream is released automatically when the
    /// lease is destroyed after the launch completes; keep the lease alive
    /// until then (the future holds a copy internally).
    rt::future<void> launch(std::function<void()> kernel, std::uint64_t flops,
                            kernel_class kc = kernel_class::other);

  private:
    friend class device;
    explicit stream_lease(device* d) : dev_(d) {}
    void release() {
        if (dev_ != nullptr) {
            dev_->release_stream();
            dev_ = nullptr;
        }
    }
    device* dev_;
};

} // namespace octo::gpu

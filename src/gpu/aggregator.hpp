#pragma once
// GPU work aggregation (ROADMAP item 1; "From Task-Based GPU Work
// Aggregation to Stellar Mergers", arXiv:2210.06438).
//
// The paper's co-processor model launches one *small* kernel per octree node
// (8 blocks x 64 threads) on up to 128 streams — deliberately under-occupying
// a modern GPU and falling back to CPU execution whenever the launching
// thread's streams are all busy (§5.1). The follow-on paper shows how to
// recover occupancy without restructuring the solver: callers keep submitting
// fine-grained per-subgrid kernels, and an *aggregation executor* dynamically
// packs pending same-class submissions into slices of one shared staging
// buffer, issuing a single fused launch per batch.
//
// This header provides that executor for the simulated device:
//
//   * work_item     — {input slice, kernel class, flops} descriptor; the
//                     kernel closure is the simulated device code (the same
//                     scalar function template the CPU path runs, so results
//                     are bit-identical by construction).
//   * device_group  — K simulated devices with independent worker pools and
//                     stream pools; the executor dispatches each batch to the
//                     least-loaded device (round-robin on ties).
//   * aggregator    — the work-item queue. submit() returns a future that
//                     completes exactly once, when the item's slice of its
//                     fused batch has executed. It returns nullopt — the
//                     paper's CPU-fallback condition — when the device pool
//                     is saturated or a seeded stream-acquire fault fires,
//                     so callers keep the §5.1 per-kernel CPU fallback.
//
// Batches flush when they reach max_batch items or when the oldest pending
// item exceeds flush_after_us (a background flusher guarantees progress, so
// joining on a submitted future can never deadlock on a partial batch).
// Staging storage is an aligned_vector recycled through buffer_recycler, and
// every slice carries race-detector read/write claims ("gpu.staging") so the
// PR-3 sanitize layer certifies the stage-before-execute ordering.

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "gpu/device.hpp"
#include "runtime/future.hpp"
#include "runtime/spinlock.hpp"
#include "support/aligned.hpp"
#include "support/flops.hpp"

namespace octo::gpu {

/// One fine-grained kernel submission: what the per-subgrid launch sites
/// (fmm::solver same-level kernels, hydro flux sweeps) hand to the executor
/// instead of acquiring a stream themselves.
struct work_item {
    kernel_class kc = kernel_class::other;
    std::uint64_t flops = 0;
    /// Size (in doubles) of this item's input slice in the batch's shared
    /// staging buffer — the modeled host→device halo transfer. Zero means
    /// the kernel runs in place on host memory (unified-memory style).
    std::size_t staging_doubles = 0;
    /// Write the item's device inputs into its staging slice. May be empty
    /// when staging_doubles is zero.
    std::function<void(double* slice)> stage;
    /// Execute the kernel; `slice` points at the staged input (nullptr when
    /// staging_doubles is zero). Must be bit-identical to the CPU path.
    std::function<void(const double* slice)> kernel;
};

struct aggregator_options {
    /// Fused-launch size threshold: a batch launches as soon as this many
    /// same-class items are pending.
    unsigned max_batch = 16;
    /// Age threshold: partial batches launch once their oldest item has
    /// waited this long (the background flusher's period is half of this).
    double flush_after_us = 100.0;
    /// Saturation bound on pending + in-flight items; 0 means auto
    /// (max_batch x total streams across the devices). Submissions beyond
    /// it are rejected — the caller runs the kernel on the CPU (§5.1).
    std::size_t saturation_items = 0;
};

/// K simulated devices of the same spec, each with its own worker pool and
/// stream pool — the multi-device extension of the single-device model.
class device_group {
  public:
    device_group(const device_spec& spec, unsigned count,
                 unsigned workers_per_device = 2);

    std::size_t size() const { return devs_.size(); }
    device& at(std::size_t i) { return *devs_[i]; }
    const device& at(std::size_t i) const { return *devs_[i]; }
    std::vector<device*> devices();

  private:
    std::vector<std::unique_ptr<device>> devs_;
};

class aggregator {
  public:
    /// Aggregate onto a single existing device.
    explicit aggregator(device& dev, aggregator_options opt = {});
    /// Aggregate across every device of a group (least-loaded dispatch).
    explicit aggregator(device_group& group, aggregator_options opt = {});
    /// Aggregate across an explicit device set (not owned).
    explicit aggregator(std::vector<device*> devices,
                        aggregator_options opt = {});
    ~aggregator();

    aggregator(const aggregator&) = delete;
    aggregator& operator=(const aggregator&) = delete;

    /// Submit one work item. The returned future completes exactly once,
    /// when the item's slice of its fused batch has executed. nullopt means
    /// the device pool is saturated (or a seeded stream-acquire fault fired):
    /// the caller must run the kernel on the CPU — the same contract as
    /// device::try_acquire_stream() returning nullopt.
    std::optional<rt::future<void>> submit(work_item item);

    /// Launch every pending partial batch now.
    void flush();

    /// flush() and block until every submitted item has completed.
    void drain();

    const aggregator_options& options() const { return opt_; }

    struct stats_t {
        std::uint64_t submitted = 0;        ///< items accepted by submit()
        std::uint64_t rejected = 0;         ///< submit() CPU fallbacks
        std::uint64_t fused_launches = 0;   ///< batches launched on a stream
        std::uint64_t cpu_batches = 0;      ///< batches run inline (no stream)
        std::uint64_t aggregated_items = 0; ///< items executed via batches
        std::uint64_t max_batch_seen = 0;   ///< largest batch launched
    };
    stats_t stats() const;

  private:
    struct pending_item {
        work_item item;
        rt::promise<void> done;
    };
    struct class_queue {
        std::vector<pending_item> items;
        std::chrono::steady_clock::time_point oldest{};
    };

    void flusher_loop();
    void launch_batch(std::vector<pending_item> items, kernel_class kc);
    device* pick_device();

    std::vector<device*> devices_;
    aggregator_options opt_;
    std::size_t capacity_ = 0;

    mutable rt::spinlock lock_;
    std::array<class_queue, static_cast<std::size_t>(kernel_class::count_)>
        pending_;
    stats_t stats_;

    std::atomic<std::size_t> inflight_{0}; ///< accepted, not yet completed
    std::atomic<std::uint64_t> rr_{0};     ///< round-robin tie-break
    std::atomic<bool> stop_{false};
    std::thread flusher_;
};

} // namespace octo::gpu

#include "gpu/device.hpp"

#include <algorithm>

#include "runtime/apex.hpp"
#include "support/assert.hpp"
#include "support/fault.hpp"

namespace octo::gpu {

device_spec p100() {
    return {.name = "NVIDIA P100",
            .peak_gflops = 4700.0,
            .num_sms = 56,
            .max_streams = 128,
            .blocks_per_kernel = 8,
            .launch_overhead_us = 5.0};
}

device_spec v100() {
    return {.name = "NVIDIA V100",
            .peak_gflops = 7000.0,
            .num_sms = 80,
            .max_streams = 128,
            .blocks_per_kernel = 8,
            .launch_overhead_us = 5.0};
}

device::device(device_spec spec, unsigned nworkers)
    : spec_(std::move(spec)), workers_(std::make_unique<rt::thread_pool>(nworkers)) {
    OCTO_ASSERT(spec_.max_streams > 0);
}

device::~device() = default;

std::optional<stream_lease> device::try_acquire_stream() {
    if (auto lease = acquire_impl()) return lease;
    // Single accounting site for both failure modes (injected fault and
    // all-streams-busy): exactly one fallback per failed acquire, so the
    // counter equals the number of kernels the caller ran on the CPU.
    rt::apex_count("gpu.stream_fallbacks");
    return std::nullopt;
}

std::optional<stream_lease> device::acquire_impl() {
    // Seeded fault injection (ISSUE 5): a real driver can fail a stream
    // acquire transiently (OOM, context pressure). The caller's contract is
    // unchanged — nullopt means "run the kernel on the CPU instead" (§5.1) —
    // so the injected failure exercises exactly the production fallback.
    if (auto* inj = support::gpu_faults();
        inj != nullptr && inj->gpu_stream_fail()) {
        return std::nullopt;
    }
    // Lock-free optimistic acquire, matching the paper's requirement that
    // scheduling stays "lock-free, low-overhead" (§1).
    unsigned cur = in_use_.load(std::memory_order_relaxed);
    while (cur < spec_.max_streams) {
        if (in_use_.compare_exchange_weak(cur, cur + 1, std::memory_order_acq_rel)) {
            return stream_lease(this);
        }
    }
    return std::nullopt; // all streams busy
}

void device::release_stream() {
    const unsigned prev = in_use_.fetch_sub(1, std::memory_order_acq_rel);
    OCTO_ASSERT(prev > 0);
}

rt::future<void> device::enqueue(std::function<void()> kernel, std::uint64_t flops,
                                 kernel_class kc) {
    kernels_.fetch_add(1, std::memory_order_relaxed);
    count_launch(kc, exec_site::gpu);
    // Modeled occupancy at launch time: every busy stream's kernel holds
    // blocks_per_kernel SMs (§5.1) — the under-occupancy the aggregation
    // executor exists to fix (it overwrites this gauge with batch blocks/SMs).
    const std::uint64_t busy_blocks =
        static_cast<std::uint64_t>(in_use_.load(std::memory_order_relaxed)) *
        spec_.blocks_per_kernel;
    rt::apex_gauge("gpu.occupancy_pct",
                   std::min<std::uint64_t>(100, busy_blocks * 100 / spec_.num_sms));
    return rt::async(*workers_, [this, kernel = std::move(kernel), flops, kc] {
        kernel();
        count_flops(kc, exec_site::gpu, flops);
        release_stream(); // stream becomes idle once its work drained
    });
}

rt::future<void> stream_lease::launch(std::function<void()> kernel, std::uint64_t flops,
                                      kernel_class kc) {
    OCTO_ASSERT_MSG(dev_ != nullptr, "launch on an empty stream lease");
    device* d = dev_;
    dev_ = nullptr; // the device releases the stream when the kernel completes
    return d->enqueue(std::move(kernel), flops, kc);
}

} // namespace octo::gpu

#include "gpu/aggregator.hpp"

#include <algorithm>
#include <exception>
#include <utility>

#include "runtime/apex.hpp"
#include "sanitize/hooks.hpp"
#include "support/assert.hpp"
#include "support/fault.hpp"

namespace octo::gpu {

// ---- device_group -----------------------------------------------------------

device_group::device_group(const device_spec& spec, unsigned count,
                           unsigned workers_per_device) {
    OCTO_ASSERT(count > 0);
    devs_.reserve(count);
    for (unsigned i = 0; i < count; ++i) {
        devs_.push_back(std::make_unique<device>(spec, workers_per_device));
    }
}

std::vector<device*> device_group::devices() {
    std::vector<device*> out;
    out.reserve(devs_.size());
    for (auto& d : devs_) out.push_back(d.get());
    return out;
}

// ---- aggregator -------------------------------------------------------------

aggregator::aggregator(device& dev, aggregator_options opt)
    : aggregator(std::vector<device*>{&dev}, opt) {}

aggregator::aggregator(device_group& group, aggregator_options opt)
    : aggregator(group.devices(), opt) {}

aggregator::aggregator(std::vector<device*> devices, aggregator_options opt)
    : devices_(std::move(devices)), opt_(opt) {
    OCTO_ASSERT(!devices_.empty());
    OCTO_ASSERT(opt_.max_batch > 0);
    capacity_ = opt_.saturation_items;
    if (capacity_ == 0) {
        std::size_t streams = 0;
        for (const device* d : devices_) streams += d->max_streams();
        capacity_ = static_cast<std::size_t>(opt_.max_batch) * streams;
    }
    flusher_ = std::thread([this] { flusher_loop(); });
}

aggregator::~aggregator() {
    stop_.store(true);
    flusher_.join();
    drain(); // every accepted item owes its submitter a completed future
}

std::optional<rt::future<void>> aggregator::submit(work_item item) {
    // Seeded stream-acquire faults and device saturation reject the
    // submission *here*, before it enters a batch, so the caller's CPU
    // fallback stays per-kernel (§5.1) — an item never fails after it has
    // been accepted into a fused launch.
    if (auto* inj = support::gpu_faults();
        inj != nullptr && inj->gpu_stream_fail()) {
        rt::apex_count("gpu.stream_fallbacks");
        lock_.lock();
        ++stats_.rejected;
        lock_.unlock();
        return std::nullopt;
    }
    if (inflight_.load(std::memory_order_acquire) >= capacity_) {
        rt::apex_count("gpu.stream_fallbacks");
        lock_.lock();
        ++stats_.rejected;
        lock_.unlock();
        return std::nullopt;
    }

    pending_item p;
    p.item = std::move(item);
    auto fut = p.done.get_future();
    const auto kc = p.item.kc;
    const auto ki = static_cast<std::size_t>(kc);

    inflight_.fetch_add(1, std::memory_order_acq_rel);
    std::vector<pending_item> batch;
    lock_.lock();
    ++stats_.submitted;
    auto& q = pending_[ki];
    if (q.items.empty()) q.oldest = std::chrono::steady_clock::now();
    q.items.push_back(std::move(p));
    if (q.items.size() >= opt_.max_batch) {
        batch = std::move(q.items);
        q.items.clear();
    }
    lock_.unlock();

    // Size-triggered flush runs on the submitting thread: the thread-pool
    // post inside the device launch then carries the submitter→worker
    // happens-before edge for the freshly staged slices.
    if (!batch.empty()) launch_batch(std::move(batch), kc);
    return fut;
}

void aggregator::flush() {
    for (std::size_t ki = 0; ki < pending_.size(); ++ki) {
        std::vector<pending_item> batch;
        lock_.lock();
        if (!pending_[ki].items.empty()) {
            batch = std::move(pending_[ki].items);
            pending_[ki].items.clear();
        }
        lock_.unlock();
        if (!batch.empty()) {
            launch_batch(std::move(batch), static_cast<kernel_class>(ki));
        }
    }
}

void aggregator::drain() {
    flush();
    while (inflight_.load(std::memory_order_acquire) != 0) {
        std::this_thread::yield();
    }
}

aggregator::stats_t aggregator::stats() const {
    lock_.lock();
    stats_t s = stats_;
    lock_.unlock();
    return s;
}

void aggregator::flusher_loop() {
    const auto period = std::chrono::duration<double, std::micro>(
        std::max(1.0, opt_.flush_after_us / 2.0));
    const auto limit = std::chrono::duration<double, std::micro>(opt_.flush_after_us);
    while (!stop_.load()) {
        std::this_thread::sleep_for(period);
        const auto now = std::chrono::steady_clock::now();
        for (std::size_t ki = 0; ki < pending_.size(); ++ki) {
            std::vector<pending_item> batch;
            lock_.lock();
            auto& q = pending_[ki];
            if (!q.items.empty() && now - q.oldest >= limit) {
                batch = std::move(q.items);
                q.items.clear();
            }
            lock_.unlock();
            if (!batch.empty()) {
                launch_batch(std::move(batch), static_cast<kernel_class>(ki));
            }
        }
    }
}

device* aggregator::pick_device() {
    // Least-loaded by streams in use; round-robin breaks ties so a K-device
    // group is exercised evenly even when everything is idle.
    const std::size_t start =
        static_cast<std::size_t>(rr_.fetch_add(1, std::memory_order_relaxed)) %
        devices_.size();
    device* best = nullptr;
    unsigned best_load = 0;
    for (std::size_t i = 0; i < devices_.size(); ++i) {
        device* d = devices_[(start + i) % devices_.size()];
        const unsigned load = d->streams_in_use();
        if (best == nullptr || load < best_load) {
            best = d;
            best_load = load;
        }
    }
    return best;
}

void aggregator::launch_batch(std::vector<pending_item> items, kernel_class kc) {
    OCTO_ASSERT(!items.empty());
    const std::size_t n = items.size();

    // Pack every item's input into one shared staging buffer (the batched
    // host→device transfer). The storage comes back from buffer_recycler in
    // steady state, and each slice carries a race-detector write claim here
    // and a read claim inside the fused kernel — the thread-pool post edge
    // of the launch is what orders them.
    std::vector<std::size_t> offsets(n, 0);
    std::size_t total_doubles = 0;
    std::uint64_t total_flops = 0;
    for (std::size_t i = 0; i < n; ++i) {
        offsets[i] = total_doubles;
        total_doubles += items[i].item.staging_doubles;
        total_flops += items[i].item.flops;
    }
    aligned_vector<double> staging(total_doubles);
    for (std::size_t i = 0; i < n; ++i) {
        if (items[i].item.staging_doubles == 0) continue;
        double* slice = staging.data() + offsets[i];
        sanitize::region_write(slice, "gpu.staging");
        if (items[i].item.stage) items[i].item.stage(slice);
    }

    lock_.lock();
    stats_.aggregated_items += n;
    stats_.max_batch_seen = std::max<std::uint64_t>(stats_.max_batch_seen, n);
    lock_.unlock();

    // The fused device function: execute every slice in submission order,
    // completing each submitter's promise exactly once.
    auto fused = [this, items = std::move(items), staging = std::move(staging),
                  offsets = std::move(offsets)]() mutable {
        for (std::size_t i = 0; i < items.size(); ++i) {
            const double* slice = items[i].item.staging_doubles != 0
                                      ? staging.data() + offsets[i]
                                      : nullptr;
            if (slice != nullptr) sanitize::region_read(slice, "gpu.staging");
            try {
                if (items[i].item.kernel) items[i].item.kernel(slice);
                items[i].done.set_value();
            } catch (...) {
                items[i].done.set_exception(std::current_exception());
            }
            inflight_.fetch_sub(1, std::memory_order_acq_rel);
        }
    };

    device* dev = pick_device();
    std::optional<stream_lease> lease = dev->try_acquire_stream();
    if (!lease) {
        // The least-loaded device refused (busy or injected fault): probe the
        // rest of the group before falling back.
        for (device* d : devices_) {
            if (d == dev) continue;
            if ((lease = d->try_acquire_stream())) {
                dev = d;
                break;
            }
        }
    }

    if (lease) {
        const auto& spec = dev->spec();
        const std::uint64_t blocks =
            static_cast<std::uint64_t>(n) * spec.blocks_per_kernel;
        rt::apex_count("gpu.aggregated_launches");
        rt::apex_gauge("gpu.batch_size", n);
        rt::apex_gauge("gpu.occupancy_pct",
                       std::min<std::uint64_t>(100, blocks * 100 / spec.num_sms));
        lock_.lock();
        ++stats_.fused_launches;
        lock_.unlock();
        // One fused launch: a single stream, a single launch overhead, one
        // gpu-site accounting entry for the whole batch. Per-item completion
        // happens inside the fused closure, so the launch future is redundant.
        rt::detach(lease->launch(std::move(fused), total_flops, kc));
        return;
    }

    // No stream anywhere in the group: execute the whole batch inline on the
    // calling thread — the aggregated analogue of the paper's CPU fallback —
    // and account it at the cpu site so Table-2-style numbers still see
    // where the work actually ran.
    lock_.lock();
    ++stats_.cpu_batches;
    lock_.unlock();
    count_launch(kc, exec_site::cpu);
    count_flops(kc, exec_site::cpu, total_flops);
    fused();
}

} // namespace octo::gpu

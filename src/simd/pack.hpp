#pragma once
// Vc-substitute: a portable SIMD pack abstraction (DESIGN.md substitution
// table). Octo-Tiger uses Vc (Kretz 2015) so that the same cell-to-cell
// interaction template can be instantiated with vector types on the CPU and
// with scalar types inside the CUDA kernel (paper §5.1). `octo::simd::pack`
// plays exactly that role here: the FMM kernels are templates over the value
// type and are instantiated with `pack<double, 4>` for the vectorized CPU
// path and with plain `double` for the scalar / simulated-GPU path.
//
// Storage is a fixed-size array; every operation is a compile-time-width
// loop, which GCC/Clang at -O3 compile to packed SIMD instructions. (GCC's
// vector_size attribute cannot take a template-dependent width, so the
// array form is the portable way to get this.)

#include <array>
#include <cmath>
#include <cstddef>
#include <ostream>

namespace octo::simd {

template <class T, std::size_t W>
class pack {
    static_assert(W > 0 && (W & (W - 1)) == 0, "pack width must be a power of two");

  public:
    using value_type = T;
    static constexpr std::size_t size() { return W; }

    pack() = default;

    /// Broadcast constructor.
    pack(T s) { // NOLINT(google-explicit-constructor): broadcast is intended
        for (std::size_t i = 0; i < W; ++i) v_[i] = s;
    }

    /// Element load from contiguous memory.
    static pack load(const T* p) {
        pack r;
        for (std::size_t i = 0; i < W; ++i) r.v_[i] = p[i];
        return r;
    }
    /// Element store to contiguous memory.
    void store(T* p) const {
        for (std::size_t i = 0; i < W; ++i) p[i] = v_[i];
    }

    T operator[](std::size_t i) const { return v_[i]; }
    void set(std::size_t i, T val) { v_[i] = val; }

    friend pack operator+(pack a, const pack& b) {
        for (std::size_t i = 0; i < W; ++i) a.v_[i] += b.v_[i];
        return a;
    }
    friend pack operator-(pack a, const pack& b) {
        for (std::size_t i = 0; i < W; ++i) a.v_[i] -= b.v_[i];
        return a;
    }
    friend pack operator*(pack a, const pack& b) {
        for (std::size_t i = 0; i < W; ++i) a.v_[i] *= b.v_[i];
        return a;
    }
    friend pack operator/(pack a, const pack& b) {
        for (std::size_t i = 0; i < W; ++i) a.v_[i] /= b.v_[i];
        return a;
    }
    friend pack operator-(const pack& a) { return pack(T{0}) - a; }

    pack& operator+=(const pack& o) { return *this = *this + o; }
    pack& operator-=(const pack& o) { return *this = *this - o; }
    pack& operator*=(const pack& o) { return *this = *this * o; }
    pack& operator/=(const pack& o) { return *this = *this / o; }

    /// Horizontal sum of all lanes.
    T hsum() const {
        T s{0};
        for (std::size_t i = 0; i < W; ++i) s += v_[i];
        return s;
    }

    friend std::ostream& operator<<(std::ostream& os, const pack& p) {
        os << '[';
        for (std::size_t i = 0; i < W; ++i) os << (i ? ", " : "") << p.v_[i];
        return os << ']';
    }

  private:
    std::array<T, W> v_{};
};

/// sqrt applied lane-wise.
template <class T, std::size_t W>
pack<T, W> sqrt(pack<T, W> a) {
    pack<T, W> r;
    for (std::size_t i = 0; i < W; ++i) r.set(i, std::sqrt(a[i]));
    return r;
}

/// 1/sqrt applied lane-wise. The FMM interaction kernels are dominated by
/// this operation (computing 1/|d| for each cell pair).
template <class T, std::size_t W>
pack<T, W> rsqrt(pack<T, W> a) {
    pack<T, W> r;
    for (std::size_t i = 0; i < W; ++i) r.set(i, T{1} / std::sqrt(a[i]));
    return r;
}

template <class T, std::size_t W>
pack<T, W> max(pack<T, W> a, const pack<T, W>& b) {
    pack<T, W> r;
    for (std::size_t i = 0; i < W; ++i) r.set(i, a[i] > b[i] ? a[i] : b[i]);
    return r;
}

template <class T, std::size_t W>
pack<T, W> min(pack<T, W> a, const pack<T, W>& b) {
    pack<T, W> r;
    for (std::size_t i = 0; i < W; ++i) r.set(i, a[i] < b[i] ? a[i] : b[i]);
    return r;
}

// ---- Scalar counterparts so kernel templates work with T = double ---------
// (the "instantiate the same function template with scalar datatypes and call
// it within the GPU kernel" trick from paper §5.1)

inline double rsqrt(double a) { return 1.0 / std::sqrt(a); }
inline float rsqrt(float a) { return 1.0f / std::sqrt(a); }
inline double hsum(double a) { return a; }
template <class T, std::size_t W>
T hsum(const pack<T, W>& p) {
    return p.hsum();
}

/// Default vector width for double precision on this build.
inline constexpr std::size_t default_width = 4; // AVX2-sized; AVX-512 would be 8
using dpack = pack<double, default_width>;

} // namespace octo::simd

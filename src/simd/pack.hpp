#pragma once
// Vc-substitute: a portable SIMD pack abstraction (DESIGN.md substitution
// table). Octo-Tiger uses Vc (Kretz 2015) so that the same cell-to-cell
// interaction template can be instantiated with vector types on the CPU and
// with scalar types inside the CUDA kernel (paper §5.1). `octo::simd::pack`
// plays exactly that role here: the FMM and hydro kernels are templates over
// the value type and are instantiated with `pack<double, 4>` for the
// vectorized CPU path and with plain `double` for the scalar / simulated-GPU
// path.
//
// Storage is the compiler's native vector type (GCC/Clang `vector_size`),
// so arithmetic, comparisons and blends map directly onto packed SIMD
// instructions; comparisons yield integer-vector masks and select() is the
// vector ternary — branchless, which matters enormously for the masked PPM
// limiter (a bool-per-lane mask compiles to a data-dependent branch per lane
// and is several times slower on mixed masks).

#include <array>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <ostream>

namespace octo::simd {

namespace detail {

/// Unsigned integer carrying one mask lane of T (same width as T).
template <class T> struct mask_bits;
template <> struct mask_bits<double> { using type = std::uint64_t; };
template <> struct mask_bits<float> { using type = std::uint32_t; };

/// The compiler's native vector of W lanes of T.
template <class T, std::size_t W>
struct native {
    typedef T type __attribute__((vector_size(sizeof(T) * W)));
};
template <class T, std::size_t W>
using native_t = typename native<T, W>::type;

/// Integer vector of the same lane geometry (what comparisons produce).
template <class T, std::size_t W>
using native_mask_t = typename native<typename mask_bits<T>::type, W>::type;

} // namespace detail

template <class T, std::size_t W>
class mask;

template <class T, std::size_t W>
class pack {
    static_assert(W > 0 && (W & (W - 1)) == 0, "pack width must be a power of two");
    using vec = detail::native_t<T, W>;

  public:
    using value_type = T;
    static constexpr std::size_t size() { return W; }

    pack() : v_{} {}

    /// Broadcast constructor.
    pack(T s) { // NOLINT(google-explicit-constructor): broadcast is intended
        for (std::size_t i = 0; i < W; ++i) v_[i] = s;
    }

    /// Element load from contiguous memory. The lane loop SLP-vectorizes to
    /// one unaligned vector load (measured faster than a memcpy of the
    /// vector, which GCC routes through a stack temporary here).
    static pack load(const T* p) {
        pack r;
        for (std::size_t i = 0; i < W; ++i) r.v_[i] = p[i];
        return r;
    }
    /// Element store to contiguous memory.
    void store(T* p) const {
        for (std::size_t i = 0; i < W; ++i) p[i] = v_[i];
    }

    T operator[](std::size_t i) const { return v_[i]; }
    void set(std::size_t i, T val) { v_[i] = val; }

    /// The underlying native vector (for the free functions below).
    vec native() const { return v_; }
    static pack from_native(vec v) {
        pack r;
        r.v_ = v;
        return r;
    }

    friend pack operator+(pack a, const pack& b) {
        a.v_ += b.v_;
        return a;
    }
    friend pack operator-(pack a, const pack& b) {
        a.v_ -= b.v_;
        return a;
    }
    friend pack operator*(pack a, const pack& b) {
        a.v_ *= b.v_;
        return a;
    }
    friend pack operator/(pack a, const pack& b) {
        a.v_ /= b.v_;
        return a;
    }
    friend pack operator-(const pack& a) { return pack(T{0}) - a; }

    pack& operator+=(const pack& o) { return *this = *this + o; }
    pack& operator-=(const pack& o) { return *this = *this - o; }
    pack& operator*=(const pack& o) { return *this = *this * o; }
    pack& operator/=(const pack& o) { return *this = *this / o; }

    /// Horizontal sum of all lanes (sequential lane order, so results are
    /// reproducible and independent of the instruction set).
    T hsum() const {
        T s{0};
        for (std::size_t i = 0; i < W; ++i) s += v_[i];
        return s;
    }

    friend std::ostream& operator<<(std::ostream& os, const pack& p) {
        os << '[';
        for (std::size_t i = 0; i < W; ++i) os << (i ? ", " : "") << p.v_[i];
        return os << ']';
    }

  private:
    vec v_;
};

/// sqrt applied lane-wise.
template <class T, std::size_t W>
pack<T, W> sqrt(pack<T, W> a) {
    pack<T, W> r;
    for (std::size_t i = 0; i < W; ++i) r.set(i, std::sqrt(a[i]));
    return r;
}

/// 1/sqrt applied lane-wise. The FMM interaction kernels are dominated by
/// this operation (computing 1/|d| for each cell pair).
template <class T, std::size_t W>
pack<T, W> rsqrt(pack<T, W> a) {
    pack<T, W> r;
    for (std::size_t i = 0; i < W; ++i) r.set(i, T{1} / std::sqrt(a[i]));
    return r;
}

template <class T, std::size_t W>
pack<T, W> max(const pack<T, W>& a, const pack<T, W>& b) {
    return pack<T, W>::from_native(a.native() > b.native() ? a.native()
                                                           : b.native());
}

template <class T, std::size_t W>
pack<T, W> min(const pack<T, W>& a, const pack<T, W>& b) {
    return pack<T, W>::from_native(a.native() < b.native() ? a.native()
                                                           : b.native());
}

template <class T, std::size_t W>
pack<T, W> abs(pack<T, W> a) {
    pack<T, W> r;
    for (std::size_t i = 0; i < W; ++i) r.set(i, std::fabs(a[i]));
    return r;
}

/// pow applied lane-wise (no fast vector form; callers guard it behind an
/// any() test so smooth flow skips it entirely).
template <class T, std::size_t W>
pack<T, W> pow(pack<T, W> a, T e) {
    pack<T, W> r;
    for (std::size_t i = 0; i < W; ++i) r.set(i, std::pow(a[i], e));
    return r;
}

// ---- lane masks ------------------------------------------------------------
// Comparisons on packs yield a mask; select() blends lane-wise. This is the
// branch-free form the PPM limiter and the dual-energy switch compile to
// (paper §4.3: the Vc port rewrites the per-cell branches as masked ops).
// The mask is the comparison's native integer vector (all-ones / all-zero
// lanes) and select() is the native vector ternary — a single blend
// instruction, bit-exact for every value including signed zeros and NaNs.

template <class T, std::size_t W>
class mask {
    using ivec = detail::native_mask_t<T, W>;
    using bits = typename detail::mask_bits<T>::type;

  public:
    static constexpr std::size_t size() { return W; }

    mask() : m_{} {}
    explicit mask(bool b) {
        for (std::size_t i = 0; i < W; ++i) m_[i] = b ? ~bits{0} : bits{0};
    }

    bool operator[](std::size_t i) const { return m_[i] != 0; }
    void set(std::size_t i, bool b) { m_[i] = b ? ~bits{0} : bits{0}; }

    ivec native() const { return m_; }
    static mask from_native(ivec v) {
        mask r;
        r.m_ = v;
        return r;
    }

    friend mask operator&&(mask a, const mask& b) {
        a.m_ &= b.m_;
        return a;
    }
    friend mask operator||(mask a, const mask& b) {
        a.m_ |= b.m_;
        return a;
    }
    friend mask operator!(mask a) {
        a.m_ = ~a.m_;
        return a;
    }

  private:
    ivec m_;
};

#define OCTO_SIMD_CMP(op)                                                      \
    template <class T, std::size_t W>                                          \
    mask<T, W> operator op(const pack<T, W>& a, const pack<T, W>& b) {         \
        return mask<T, W>::from_native(a.native() op b.native());              \
    }
OCTO_SIMD_CMP(<)
OCTO_SIMD_CMP(<=)
OCTO_SIMD_CMP(>)
OCTO_SIMD_CMP(>=)
OCTO_SIMD_CMP(==)
#undef OCTO_SIMD_CMP

/// Lane-wise blend: m ? a : b (branchless native blend).
template <class T, std::size_t W>
pack<T, W> select(const mask<T, W>& m, const pack<T, W>& a, const pack<T, W>& b) {
    return pack<T, W>::from_native(m.native() ? a.native() : b.native());
}

template <class T, std::size_t W>
bool any(const mask<T, W>& m) {
    bool r = false;
    for (std::size_t i = 0; i < W; ++i) r = r || m[i];
    return r;
}

template <class T, std::size_t W>
bool all(const mask<T, W>& m) {
    bool r = true;
    for (std::size_t i = 0; i < W; ++i) r = r && m[i];
    return r;
}

/// Horizontal max / min over lanes (CFL reductions).
template <class T, std::size_t W>
T hmax(const pack<T, W>& p) {
    T r = p[0];
    for (std::size_t i = 1; i < W; ++i) r = p[i] > r ? p[i] : r;
    return r;
}

template <class T, std::size_t W>
T hmin(const pack<T, W>& p) {
    T r = p[0];
    for (std::size_t i = 1; i < W; ++i) r = p[i] < r ? p[i] : r;
    return r;
}

// ---- Scalar counterparts so kernel templates work with T = double ---------
// (the "instantiate the same function template with scalar datatypes and call
// it within the GPU kernel" trick from paper §5.1)

inline double rsqrt(double a) { return 1.0 / std::sqrt(a); }
inline float rsqrt(float a) { return 1.0f / std::sqrt(a); }
inline double hsum(double a) { return a; }
template <class T, std::size_t W>
T hsum(const pack<T, W>& p) {
    return p.hsum();
}
inline double select(bool m, double a, double b) { return m ? a : b; }
inline bool any(bool m) { return m; }
inline bool all(bool m) { return m; }
inline double hmax(double a) { return a; }
inline double hmin(double a) { return a; }
inline double max(double a, double b) { return a > b ? a : b; }
inline double min(double a, double b) { return a < b ? a : b; }
inline double abs(double a) { return std::fabs(a); }
inline double sqrt(double a) { return std::sqrt(a); }
inline double pow(double a, double e) { return std::pow(a, e); }

/// Default vector width for double precision on this build.
inline constexpr std::size_t default_width = 8; // one AVX-512 register (or two
                                                // AVX2 ops when only 256-bit
                                                // units are available)
using dpack = pack<double, default_width>;

} // namespace octo::simd

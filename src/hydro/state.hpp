#pragma once
// Conserved/primitive state handling for the finite-volume hydro solver
// (paper §4.2): mass density, momentum density, gas total energy, the
// entropy tracer tau of the dual-energy formalism, spin angular momentum
// density, and five passive scalars.

#include <array>

#include "amr/config.hpp"
#include "physics/eos.hpp"
#include "support/vec3.hpp"

namespace octo::hydro {

using amr::n_fields;

/// Full conserved state of one cell.
using state = std::array<double, n_fields>;

/// Primitive quantities derived from a conserved state.
struct primitives {
    double rho;
    dvec3 v;
    double p;         ///< gas pressure
    double c;         ///< adiabatic sound speed
    double internal;  ///< internal energy density actually used (dual energy)
};

/// Convert a conserved state to primitives using the dual-energy switch.
primitives to_primitives(const state& u, const phys::ideal_gas_eos& eos);

/// Physical flux of the conserved state along axis `a` (0=x,1=y,2=z), given
/// the state's primitives.
state physical_flux(const state& u, const primitives& pr, int a);

/// Maximum signal speed along axis a (|v_a| + c).
double max_wave_speed(const primitives& pr, int a);

/// Density floor applied everywhere (vacuum regions of the scenario).
inline constexpr double rho_floor = 1e-14;
/// Tracer floor consistent with the density floor.
inline constexpr double tau_floor = 1e-18;

} // namespace octo::hydro

#include "hydro/reconstruct.hpp"

#include <algorithm>
#include <cmath>

namespace octo::hydro {
namespace {

double minmod(double a, double b) {
    if (a * b <= 0.0) return 0.0;
    return std::abs(a) < std::abs(b) ? a : b;
}

/// Van-Leer limited slope of cell i (indices relative to q).
double limited_slope(const double* q, int i) {
    const double dc = 0.5 * (q[i + 1] - q[i - 1]);
    const double dl = 2.0 * (q[i] - q[i - 1]);
    const double dr = 2.0 * (q[i + 1] - q[i]);
    if (dl * dr <= 0.0) return 0.0;
    return minmod(dc, minmod(dl, dr));
}

} // namespace

void ppm_reconstruct(const double* q, int n, double* qface_lo, double* qface_hi) {
    // Step 1: fourth-order interface values with limited slopes
    // (CW84 eq. 1.6 with the slope limiting of eq. 1.8).
    // iface[i] is the value at face i-1/2 (lower face of cell i), for
    // i in [0, n] — needs cells i-2..i+1.
    double iface_storage[64 + 1];
    double* iface = iface_storage;
    for (int i = 0; i <= n; ++i) {
        const double dql = limited_slope(q, i - 1);
        const double dqr = limited_slope(q, i);
        iface[i] = q[i - 1] + 0.5 * (q[i] - q[i - 1]) - (dqr - dql) / 6.0;
    }

    // Step 2: per-cell monotonicity limiting (CW84 eq. 1.10).
    for (int i = 0; i < n; ++i) {
        double lo = iface[i];
        double hi = iface[i + 1];
        const double qc = q[i];
        if ((hi - qc) * (qc - lo) <= 0.0) {
            // Local extremum: flatten.
            lo = qc;
            hi = qc;
        } else {
            const double d = hi - lo;
            const double six = 6.0 * (qc - 0.5 * (lo + hi));
            if (d * six > d * d) {
                lo = 3.0 * qc - 2.0 * hi;
            } else if (-d * d > d * six) {
                hi = 3.0 * qc - 2.0 * lo;
            }
        }
        qface_lo[i] = lo;
        qface_hi[i] = hi;
    }
}

void pcm_reconstruct(const double* q, int n, double* qface_lo, double* qface_hi) {
    for (int i = 0; i < n; ++i) {
        qface_lo[i] = q[i];
        qface_hi[i] = q[i];
    }
}

} // namespace octo::hydro

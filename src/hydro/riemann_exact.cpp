#include "hydro/riemann_exact.hpp"

#include <cmath>

#include "support/assert.hpp"

namespace octo::hydro {
namespace {

/// Pressure function f_K(p) and derivative for one side (Toro ch. 4).
void side_function(double p, const riemann_state& s, double gamma, double& f,
                   double& fd) {
    const double A = 2.0 / ((gamma + 1.0) * s.rho);
    const double B = (gamma - 1.0) / (gamma + 1.0) * s.p;
    const double c = std::sqrt(gamma * s.p / s.rho);
    if (p > s.p) {
        // Shock.
        const double q = std::sqrt(A / (p + B));
        f = (p - s.p) * q;
        fd = q * (1.0 - 0.5 * (p - s.p) / (p + B));
    } else {
        // Rarefaction.
        const double pr = p / s.p;
        f = 2.0 * c / (gamma - 1.0) * (std::pow(pr, (gamma - 1.0) / (2.0 * gamma)) - 1.0);
        fd = std::pow(pr, -(gamma + 1.0) / (2.0 * gamma)) / (s.rho * c);
    }
}

/// Newton iteration for the star-region pressure.
double star_pressure(const riemann_state& l, const riemann_state& r, double gamma) {
    // Two-rarefaction initial guess.
    const double cl = std::sqrt(gamma * l.p / l.rho);
    const double cr = std::sqrt(gamma * r.p / r.rho);
    const double z = (gamma - 1.0) / (2.0 * gamma);
    double p = std::pow((cl + cr - 0.5 * (gamma - 1.0) * (r.u - l.u)) /
                            (cl / std::pow(l.p, z) + cr / std::pow(r.p, z)),
                        1.0 / z);
    p = std::max(p, 1e-12);
    for (int it = 0; it < 60; ++it) {
        double fl, fld, fr, frd;
        side_function(p, l, gamma, fl, fld);
        side_function(p, r, gamma, fr, frd);
        const double f = fl + fr + (r.u - l.u);
        const double d = fld + frd;
        const double dp = f / d;
        p -= dp;
        p = std::max(p, 1e-14);
        if (std::abs(dp) < 1e-14 * p) break;
    }
    return p;
}

} // namespace

riemann_state riemann_exact(const riemann_state& l, const riemann_state& r, double xi,
                            double gamma) {
    const double cl = std::sqrt(gamma * l.p / l.rho);
    const double cr = std::sqrt(gamma * r.p / r.rho);
    const double pstar = star_pressure(l, r, gamma);
    double fl, fld, fr, frd;
    side_function(pstar, l, gamma, fl, fld);
    side_function(pstar, r, gamma, fr, frd);
    const double ustar = 0.5 * (l.u + r.u) + 0.5 * (fr - fl);

    riemann_state out{};
    if (xi < ustar) {
        // Left of the contact.
        if (pstar > l.p) {
            // Left shock.
            const double sl =
                l.u - cl * std::sqrt((gamma + 1.0) / (2.0 * gamma) * pstar / l.p +
                                     (gamma - 1.0) / (2.0 * gamma));
            if (xi < sl) return l;
            const double g1 = (gamma - 1.0) / (gamma + 1.0);
            out.rho = l.rho * (pstar / l.p + g1) / (g1 * pstar / l.p + 1.0);
            out.u = ustar;
            out.p = pstar;
            return out;
        }
        // Left rarefaction.
        const double cstar = cl * std::pow(pstar / l.p, (gamma - 1.0) / (2.0 * gamma));
        const double head = l.u - cl;
        const double tail = ustar - cstar;
        if (xi < head) return l;
        if (xi > tail) {
            out.rho = l.rho * std::pow(pstar / l.p, 1.0 / gamma);
            out.u = ustar;
            out.p = pstar;
            return out;
        }
        // Inside the fan.
        const double u = 2.0 / (gamma + 1.0) * (cl + 0.5 * (gamma - 1.0) * l.u + xi);
        const double c = 2.0 / (gamma + 1.0) * (cl + 0.5 * (gamma - 1.0) * (l.u - xi));
        out.rho = l.rho * std::pow(c / cl, 2.0 / (gamma - 1.0));
        out.u = u;
        out.p = l.p * std::pow(c / cl, 2.0 * gamma / (gamma - 1.0));
        return out;
    }
    // Right of the contact (mirror).
    if (pstar > r.p) {
        const double sr =
            r.u + cr * std::sqrt((gamma + 1.0) / (2.0 * gamma) * pstar / r.p +
                                 (gamma - 1.0) / (2.0 * gamma));
        if (xi > sr) return r;
        const double g1 = (gamma - 1.0) / (gamma + 1.0);
        out.rho = r.rho * (pstar / r.p + g1) / (g1 * pstar / r.p + 1.0);
        out.u = ustar;
        out.p = pstar;
        return out;
    }
    const double cstar = cr * std::pow(pstar / r.p, (gamma - 1.0) / (2.0 * gamma));
    const double head = r.u + cr;
    const double tail = ustar + cstar;
    if (xi > head) return r;
    if (xi < tail) {
        out.rho = r.rho * std::pow(pstar / r.p, 1.0 / gamma);
        out.u = ustar;
        out.p = pstar;
        return out;
    }
    const double u = 2.0 / (gamma + 1.0) * (-cr + 0.5 * (gamma - 1.0) * r.u + xi);
    const double c = 2.0 / (gamma + 1.0) * (cr - 0.5 * (gamma - 1.0) * (r.u - xi));
    out.rho = r.rho * std::pow(c / cr, 2.0 / (gamma - 1.0));
    out.u = u;
    out.p = r.p * std::pow(c / cr, 2.0 * gamma / (gamma - 1.0));
    return out;
}

riemann_state sod_left() { return {1.0, 0.0, 1.0}; }
riemann_state sod_right() { return {0.125, 0.0, 0.1}; }

} // namespace octo::hydro

#include "hydro/pencil.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "support/assert.hpp"

namespace octo::hydro {

using namespace octo::amr;
using simd::dpack;
using dmask = simd::mask<double, simd::default_width>;

namespace {

constexpr int W = static_cast<int>(simd::default_width);
constexpr int P = pencil_len;    // 14 cells along the sweep axis
constexpr int T = pencil_lanes;  // 64 transverse pencils = SIMD lanes
constexpr int C = recon_cells;   // cells -1..INX carry face states
constexpr int NV = n_recon_vars; // 14 reconstructed variables
static_assert(T % W == 0, "lane count must be a multiple of the pack width");

// Reconstructed-variable layout (matches the scalar reconstruct_pencil):
// 0 rho, 1..3 v, 4 p, 5 tau/rho, 6..10 passives/rho, 11..13 l/rho.
constexpr int rv_rho = 0, rv_vx = 1, rv_p = 4, rv_tau = 5, rv_pass = 6;
constexpr int rv_l = 6 + n_passive;

/// Transpose the sub-grid into the axis-ordered pencil bundle:
/// u[(q*P + p)*T + (b*INX + c)] with p the (ghost-inclusive) cell index
/// along `axis` and (b, c) the transverse interior cell in axis order.
void gather_axis(const subgrid& g, int axis, double* u) {
    for (int q = 0; q < n_hydro_fields; ++q) {
        const double* src = g.field_data(q);
        double* dst = u + static_cast<std::size_t>(q) * P * T;
        if (axis == 0) {
            for (int p = 0; p < P; ++p)
                for (int b = 0; b < INX; ++b) {
                    const double* row = src + (p * NX + (b + H_BW)) * NX + H_BW;
                    std::memcpy(dst + p * T + b * INX, row,
                                sizeof(double) * INX);
                }
        } else if (axis == 1) {
            for (int p = 0; p < P; ++p)
                for (int b = 0; b < INX; ++b) {
                    const double* row =
                        src + ((b + H_BW) * NX + p) * NX + H_BW;
                    std::memcpy(dst + p * T + b * INX, row,
                                sizeof(double) * INX);
                }
        } else {
            for (int b = 0; b < INX; ++b)
                for (int c = 0; c < INX; ++c) {
                    const double* col =
                        src + ((b + H_BW) * NX + (c + H_BW)) * NX;
                    const int t = b * INX + c;
                    for (int p = 0; p < P; ++p) dst[p * T + t] = col[p];
                }
        }
    }
}

/// Cell primitives for reconstruction, lane-parallel mirror of
/// to_primitives + the q/rho fractions. The dual-energy switch is a masked
/// select; the tau^gamma fallback (a lane-wise pow) only runs when some lane
/// is in the high-Mach regime.
void primitives_pass(const double* u, const phys::ideal_gas_eos& eos,
                     double* qv) {
    const double gamma = eos.gamma();
    const dpack floor_p(rho_floor), zero(0.0), half(0.5);
    const dpack desw(eos.de_switch()), gm1(gamma - 1.0);
    for (int p = 0; p < P; ++p) {
        const std::size_t cell = static_cast<std::size_t>(p) * T;
        for (int t = 0; t < T; t += W) {
            const auto ld = [&](int q) {
                return dpack::load(u + static_cast<std::size_t>(q) * P * T +
                                   cell + t);
            };
            const auto st = [&](int v, const dpack& x) {
                x.store(qv + static_cast<std::size_t>(v) * P * T + cell + t);
            };
            const dpack rho = simd::max(ld(f_rho), floor_p);
            const dpack vx = ld(f_sx) / rho;
            const dpack vy = ld(f_sy) / rho;
            const dpack vz = ld(f_sz) / rho;
            const dpack E = ld(f_egas);
            const dpack tau = ld(f_tau);
            const dpack ke = half * rho * (vx * vx + vy * vy + vz * vz);
            const dpack from_total = E - ke;
            const dmask use_total =
                (from_total > desw * E) && (from_total > zero);
            dpack ent = zero;
            if (!simd::all(use_total)) {
                ent = simd::pow(simd::max(tau, zero), gamma);
            }
            const dpack internal =
                simd::max(simd::select(use_total, from_total, ent), zero);
            st(rv_rho, rho);
            st(rv_vx + 0, vx);
            st(rv_vx + 1, vy);
            st(rv_vx + 2, vz);
            st(rv_p, gm1 * internal);
            st(rv_tau, tau / rho);
            for (int s = 0; s < n_passive; ++s) {
                st(rv_pass + s, ld(first_passive + s) / rho);
            }
            st(rv_l + 0, ld(f_lx) / rho);
            st(rv_l + 1, ld(f_ly) / rho);
            st(rv_l + 2, ld(f_lz) / rho);
        }
    }
}

/// minmod with the branches as masked selects.
dpack mm(const dpack& a, const dpack& b) {
    const dpack zero(0.0);
    return simd::select(a * b <= zero, zero,
                        simd::select(simd::abs(a) < simd::abs(b), a, b));
}

/// PPM (CW84) over one variable of the bundle: limited-slope interface
/// values, then the monotonicity limiter, everything lane-parallel. `q` is
/// the [P][T] plane of the variable; face states are written for the C
/// cells -1..INX (cell cidx lives at pencil position cidx + H_BW - 1).
void reconstruct_var(const double* q, bool use_ppm, double* iface, double* flo,
                     double* fhi) {
    if (!use_ppm) {
        for (int cidx = 0; cidx < C; ++cidx) {
            std::memcpy(flo + cidx * T, q + (cidx + 2) * T, sizeof(double) * T);
            std::memcpy(fhi + cidx * T, q + (cidx + 2) * T, sizeof(double) * T);
        }
        return;
    }
    const dpack zero(0.0), half(0.5), two(2.0), three(3.0), six(6.0);
    // Interface i (lower face of cell cidx = i) from cells i-2..i+1 relative
    // to cell -1, i.e. pencil positions i..i+3.
    for (int i = 0; i <= C; ++i) {
        for (int t = 0; t < T; t += W) {
            const dpack q_m2 = dpack::load(q + (i + 0) * T + t);
            const dpack q_m1 = dpack::load(q + (i + 1) * T + t);
            const dpack q_0 = dpack::load(q + (i + 2) * T + t);
            const dpack q_p1 = dpack::load(q + (i + 3) * T + t);
            const dpack dc_l = half * (q_0 - q_m2);
            const dpack dl_l = two * (q_m1 - q_m2);
            const dpack dr_l = two * (q_0 - q_m1);
            const dpack dql =
                simd::select(dl_l * dr_l <= zero, zero, mm(dc_l, mm(dl_l, dr_l)));
            const dpack dc_r = half * (q_p1 - q_m1);
            const dpack dl_r = two * (q_0 - q_m1);
            const dpack dr_r = two * (q_p1 - q_0);
            const dpack dqr =
                simd::select(dl_r * dr_r <= zero, zero, mm(dc_r, mm(dl_r, dr_r)));
            const dpack f = q_m1 + half * (q_0 - q_m1) - (dqr - dql) / six;
            f.store(iface + i * T + t);
        }
    }
    // Monotonicity limiting (CW84 eq. 1.10). The extremum flatten and the
    // two overshoot corrections are mutually exclusive, so the branch
    // cascade maps onto nested selects exactly.
    for (int cidx = 0; cidx < C; ++cidx) {
        for (int t = 0; t < T; t += W) {
            const dpack lo0 = dpack::load(iface + cidx * T + t);
            const dpack hi0 = dpack::load(iface + (cidx + 1) * T + t);
            const dpack qc = dpack::load(q + (cidx + 2) * T + t);
            const dmask ext = (hi0 - qc) * (qc - lo0) <= zero;
            const dpack d = hi0 - lo0;
            const dpack sx = six * (qc - half * (lo0 + hi0));
            const dmask c_lo = d * sx > d * d;
            const dmask c_hi = (zero - d * d) > d * sx;
            const dpack lo1 = simd::select(c_lo, three * qc - two * hi0, lo0);
            const dpack hi1 = simd::select(c_hi, three * qc - two * lo0, hi0);
            simd::select(ext, qc, lo1).store(flo + cidx * T + t);
            simd::select(ext, qc, hi1).store(fhi + cidx * T + t);
        }
    }
}

struct face_prim {
    dpack va; ///< velocity component along the sweep axis
    dpack c;  ///< sound speed
    dpack p;  ///< pressure
};

/// Assemble the conserved face state of one side from the reconstructed
/// variables (mirror of the scalar face assembly) and derive its primitives
/// exactly as to_primitives does, so the two paths agree to rounding.
face_prim assemble_face(const double* rec, std::size_t off, int axis,
                        const phys::ideal_gas_eos& eos, dpack* u) {
    const double gamma = eos.gamma();
    const dpack floor_p(rho_floor), zero(0.0), half(0.5);
    const auto ld = [&](int v) {
        return dpack::load(rec + static_cast<std::size_t>(v) * C * T + off);
    };
    const dpack rho = simd::max(ld(rv_rho), floor_p);
    const dpack wx = ld(rv_vx + 0), wy = ld(rv_vx + 1), wz = ld(rv_vx + 2);
    const dpack pr = simd::max(ld(rv_p), zero);
    const dpack internal0 = pr / dpack(gamma - 1.0);
    u[f_rho] = rho;
    u[f_sx] = rho * wx;
    u[f_sy] = rho * wy;
    u[f_sz] = rho * wz;
    u[f_egas] = internal0 + half * rho * (wx * wx + wy * wy + wz * wz);
    u[f_tau] = simd::max(ld(rv_tau), zero) * rho;
    for (int s = 0; s < n_passive; ++s) {
        u[first_passive + s] = ld(rv_pass + s) * rho;
    }
    u[f_lx] = ld(rv_l + 0) * rho;
    u[f_ly] = ld(rv_l + 1) * rho;
    u[f_lz] = ld(rv_l + 2) * rho;

    // Primitives of the assembled state (dual-energy switch as a select).
    const dpack vx = u[f_sx] / rho, vy = u[f_sy] / rho, vz = u[f_sz] / rho;
    const dpack ke = half * rho * (vx * vx + vy * vy + vz * vz);
    const dpack from_total = u[f_egas] - ke;
    const dmask use_total =
        (from_total > dpack(eos.de_switch()) * u[f_egas]) && (from_total > zero);
    dpack ent = zero;
    if (!simd::all(use_total)) {
        ent = simd::pow(simd::max(u[f_tau], zero), gamma);
    }
    const dpack internal =
        simd::max(simd::select(use_total, from_total, ent), zero);
    face_prim out;
    out.p = dpack(gamma - 1.0) * internal;
    out.c = simd::sqrt(dpack(gamma) * out.p / rho);
    out.va = axis == 0 ? vx : axis == 1 ? vy : vz;
    return out;
}

/// Kurganov–Tadmor flux over every face plane of the sweep. Writes the
/// n_hydro_fields planes of `out` (radiation planes stay zero, as in the
/// scalar path where the face states carry zero radiation moments).
void flux_pass(const double* flo, const double* fhi, int axis,
               const phys::ideal_gas_eos& eos, leaf_flux_soa& out,
               double* max_speed) {
    const dpack zero(0.0), one(1.0);
    dpack msp(0.0);
    dpack uL[n_hydro_fields], uR[n_hydro_fields];
    for (int p = 0; p < n_faces; ++p) {
        for (int t = 0; t < T; t += W) {
            // Left state: hi face of cell p-1 (cidx p); right: lo of cell p.
            const face_prim pL =
                assemble_face(fhi, static_cast<std::size_t>(p) * T + t, axis,
                              eos, uL);
            const face_prim pR =
                assemble_face(flo, static_cast<std::size_t>(p + 1) * T + t,
                              axis, eos, uR);
            const dpack ap =
                simd::max(simd::max(pL.va + pL.c, pR.va + pR.c), zero);
            const dpack am =
                simd::min(simd::min(pL.va - pL.c, pR.va - pR.c), zero);
            msp = simd::max(msp, simd::max(ap, zero - am));
            const dpack denom = ap - am;
            const dmask safe = denom > zero;
            const dpack inv =
                simd::select(safe, one / simd::select(safe, denom, one), zero);
            const dpack apam = ap * am;
            for (int q = 0; q < n_hydro_fields; ++q) {
                dpack fL = uL[q] * pL.va;
                dpack fR = uR[q] * pR.va;
                if (q == f_sx + axis) {
                    fL += pL.p;
                    fR += pR.p;
                } else if (q == f_egas) {
                    fL += pL.p * pL.va;
                    fR += pR.p * pR.va;
                }
                const dpack fq =
                    (ap * fL - am * fR) * inv + apam * inv * (uR[q] - uL[q]);
                double* plane = out.plane(axis, q);
                if (axis == 2) {
                    // Transverse-major plane: scatter the lanes.
                    for (int l = 0; l < W; ++l) {
                        plane[(t + l) * n_faces + p] = fq[l];
                    }
                } else {
                    fq.store(plane + p * T + t);
                }
            }
        }
    }
    *max_speed = std::max(*max_speed, simd::hmax(msp));
}

} // namespace

void compute_leaf_fluxes_simd(const subgrid& g, int axis,
                              const phys::ideal_gas_eos& eos, bool use_ppm,
                              pencil_workspace& ws, leaf_flux_soa& out,
                              double* max_speed) {
    ws.u.resize(static_cast<std::size_t>(n_hydro_fields) * P * T);
    ws.qv.resize(static_cast<std::size_t>(NV) * P * T);
    ws.iface.resize(static_cast<std::size_t>(C + 1) * T);
    ws.flo.resize(static_cast<std::size_t>(NV) * C * T);
    ws.fhi.resize(static_cast<std::size_t>(NV) * C * T);

    gather_axis(g, axis, ws.u.data());
    primitives_pass(ws.u.data(), eos, ws.qv.data());
    for (int v = 0; v < NV; ++v) {
        reconstruct_var(ws.qv.data() + static_cast<std::size_t>(v) * P * T,
                        use_ppm, ws.iface.data(),
                        ws.flo.data() + static_cast<std::size_t>(v) * C * T,
                        ws.fhi.data() + static_cast<std::size_t>(v) * C * T);
    }
    flux_pass(ws.flo.data(), ws.fhi.data(), axis, eos, out, max_speed);
}

double leaf_max_wave_speed_simd(const subgrid& g,
                                const phys::ideal_gas_eos& eos) {
    const double gamma = eos.gamma();
    const dpack floor_p(rho_floor), zero(0.0), half(0.5);
    const dpack desw(eos.de_switch()), gm1(gamma - 1.0), gam(gamma);
    dpack ms(1e-30);
    for (int i = 0; i < INX; ++i)
        for (int j = 0; j < INX; ++j) {
            const int base = subgrid::interior_index(i, j, 0);
            for (int kk = 0; kk < INX; kk += W) {
                const auto ld = [&](int q) {
                    return dpack::load(g.field_data(q) + base + kk);
                };
                const dpack rho = simd::max(ld(f_rho), floor_p);
                const dpack vx = ld(f_sx) / rho;
                const dpack vy = ld(f_sy) / rho;
                const dpack vz = ld(f_sz) / rho;
                const dpack ke = half * rho * (vx * vx + vy * vy + vz * vz);
                const dpack E = ld(f_egas);
                const dpack from_total = E - ke;
                const dmask use_total =
                    (from_total > desw * E) && (from_total > zero);
                dpack ent = zero;
                if (!simd::all(use_total)) {
                    ent = simd::pow(simd::max(ld(f_tau), zero), gamma);
                }
                const dpack internal =
                    simd::max(simd::select(use_total, from_total, ent), zero);
                const dpack c = simd::sqrt(gam * (gm1 * internal) / rho);
                ms = simd::max(ms, simd::abs(vx) + c);
                ms = simd::max(ms, simd::abs(vy) + c);
                ms = simd::max(ms, simd::abs(vz) + c);
            }
        }
    return simd::hmax(ms);
}

} // namespace octo::hydro

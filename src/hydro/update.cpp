#include "hydro/update.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <limits>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "gpu/aggregator.hpp"
#include "hydro/pencil.hpp"
#include "kernel/autotune.hpp"
#include "kernel/hydro.hpp"
#include "runtime/apex.hpp"
#include "runtime/future.hpp"
#include "support/aligned.hpp"
#include "support/assert.hpp"
#include "support/timer.hpp"

namespace octo::hydro {

using namespace octo::amr;

namespace {

/// Modeled cost of one axis flux sweep over a 8^3 leaf (reconstruction +
/// Riemann per face) — accounting only; the machine model consumes it.
constexpr std::uint64_t flux_sweep_flops =
    static_cast<std::uint64_t>(amr::INX3) * 400;

constexpr int W = static_cast<int>(simd::default_width);

/// Cell (i,j,k) from axis-ordered (p, b, c).
void axis_cell(int axis, int p, int b, int c, int& i, int& j, int& k) {
    switch (axis) {
        case 0: i = p; j = b; k = c; break;
        case 1: i = b; j = p; k = c; break;
        default: i = b; j = c; k = p; break;
    }
}

/// Launch geometry of the portable hydro kernels (src/kernel) for these
/// options: explicit simd_width wins, else use_simd selects the default
/// pack width, else the width-1 (scalar) instantiation.
kernel::exec_config exec_cfg(const step_options& opt) {
    const int w = opt.simd_width > 0 ? opt.simd_width : (opt.use_simd ? W : 1);
    return {w > 1 ? kernel::backend_kind::simd : kernel::backend_kind::scalar, w,
            opt.lane_tile};
}

/// One leaf's flux sweep along `axis` through the portable kernel layer
/// (gather + primitives + reconstruction + KT flux, at the width/tile the
/// options select). Returns the max signal speed seen (diagnostic; dt comes
/// from the CFL reduction).
double compute_axis_fluxes(const subgrid& g, int axis, const step_options& opt,
                           leaf_flux_soa& out) {
    double ms = 0.0;
    pencil_workspace ws; // recycled
    kernel::run_leaf_fluxes(exec_cfg(opt), g, axis, opt.eos, opt.use_ppm, ws,
                            out, &ms);
    return ms;
}

// ---- reflux ----------------------------------------------------------------

struct reflux_moment {
    dvec3 m{0, 0, 0};
};

/// One coarse face adjacent to a refined same-level neighbor; the moments
/// are rewritten by reflux_face every stage.
struct reflux_entry {
    node_key leaf;
    int axis;
    int dir;
    std::vector<reflux_moment> moments;
};

/// The four children of `nb` that touch its shared face with a coarse
/// neighbor in direction -dir (the enumeration reflux_face walks).
std::array<node_key, 4> face_children(node_key nb, int axis, int dir) {
    std::array<node_key, 4> out{};
    int n = 0;
    for (int bb = 0; bb < 2; ++bb) {
        for (int cc = 0; cc < 2; ++cc) {
            int obit[3];
            obit[axis] = dir > 0 ? 0 : 1;
            const int ta = axis == 0 ? 1 : 0;
            const int tb = axis == 2 ? 1 : 2;
            obit[ta] = bb;
            obit[tb] = cc;
            out[static_cast<std::size_t>(n++)] =
                key_child(nb, obit[0] | (obit[1] << 1) | (obit[2] << 2));
        }
    }
    return out;
}

/// Replace the coarse side's boundary fluxes with the restriction of the
/// fine side's, and collect the tangential moment needed by the angular
/// momentum ledger (see update_leaf). `flux_of` maps a leaf to its fluxes.
template <class FluxOf>
void reflux_face(tree& t, node_key coarse, int axis, int dir,
                 leaf_flux_soa& cf, const FluxOf& flux_of,
                 std::vector<reflux_moment>& moments) {
    const node_key nb = key_neighbor(coarse, {axis == 0 ? dir : 0,
                                              axis == 1 ? dir : 0,
                                              axis == 2 ? dir : 0});
    OCTO_ASSERT(nb != invalid_key && t.contains(nb) && t.node(nb).refined);

    const box_geometry cg = t.geometry(coarse);
    const double dxf = cg.dx / 2.0;

    // Coarse boundary plane index and the fine plane on the children.
    const int cplane = dir > 0 ? INX : 0;
    const int fplane = dir > 0 ? 0 : INX;

    moments.assign(INX * INX, reflux_moment{});

    for (int b = 0; b < INX; ++b) {
        for (int c = 0; c < INX; ++c) {
            // Child of nb covering coarse transverse cell (b, c): the child
            // must touch the shared face: its octant bit along `axis` is 0
            // for dir>0 (the -axis side of nb), 1 for dir<0.
            int obit[3];
            obit[axis] = dir > 0 ? 0 : 1;
            // Transverse axes in axis order.
            const int ta = axis == 0 ? 1 : 0;
            const int tb = axis == 2 ? 1 : 2;
            obit[ta] = b / (INX / 2);
            obit[tb] = c / (INX / 2);
            const int oct = obit[0] | (obit[1] << 1) | (obit[2] << 2);
            const node_key child = key_child(nb, oct);
            OCTO_ASSERT(t.contains(child));
            const leaf_flux_soa& ff = flux_of(child);

            state sum{};
            dvec3 moment{0, 0, 0};
            // Coarse face center (for the tangential moment).
            int ci, cj, ck;
            axis_cell(axis, cplane, b, c, ci, cj, ck);
            dvec3 face_center = cg.cell_center(ci, cj, ck);
            face_center[axis] -= 0.5 * cg.dx; // center of the lower face of cell

            const box_geometry fg = t.geometry(child);
            for (int db = 0; db < 2; ++db) {
                for (int dc = 0; dc < 2; ++dc) {
                    const int fb = 2 * (b % (INX / 2)) + db;
                    const int fc = 2 * (c % (INX / 2)) + dc;
                    const int fi = leaf_flux_soa::findex(axis, fplane, fb, fc);
                    state f;
                    for (int q = 0; q < n_fields; ++q) {
                        f[static_cast<std::size_t>(q)] = ff.plane(axis, q)[fi];
                    }
                    for (int q = 0; q < n_fields; ++q) {
                        sum[static_cast<std::size_t>(q)] +=
                            f[static_cast<std::size_t>(q)];
                    }
                    // Fine face center.
                    int fi2, fj2, fk2;
                    axis_cell(axis, fplane, fb, fc, fi2, fj2, fk2);
                    dvec3 fcc = fg.cell_center(fi2, fj2, fk2);
                    fcc[axis] -= 0.5 * fg.dx;
                    dvec3 tang = fcc - face_center;
                    tang[axis] = 0.0;
                    const dvec3 Fs{f[f_sx], f[f_sy], f[f_sz]};
                    moment += cross(tang, Fs) * (dxf * dxf); // A_f * (t x F)
                }
            }
            const int cfi = leaf_flux_soa::findex(axis, cplane, b, c);
            for (int q = 0; q < n_fields; ++q) {
                cf.plane(axis, q)[cfi] = sum[static_cast<std::size_t>(q)] / 4.0;
            }
            moments[static_cast<std::size_t>(b * INX + c)].m = moment;
        }
    }
}

// ---- conserved update (shared by the barriered and futurized schedules) ---

/// Pre-update density/momentum snapshot for the source terms.
void snapshot_sources(const subgrid& g, aligned_vector<double>& old_rho,
                      aligned_vector<dvec3>& old_s) {
    old_rho.resize(INX3);
    old_s.resize(INX3);
    for (int i = 0; i < INX; ++i)
        for (int j = 0; j < INX; ++j)
            for (int kk = 0; kk < INX; ++kk) {
                const auto c =
                    static_cast<std::size_t>(((i * INX) + j) * INX + kk);
                old_rho[c] = g.interior(f_rho, i, j, kk);
                old_s[c] = {g.interior(f_sx, i, j, kk),
                            g.interior(f_sy, i, j, kk),
                            g.interior(f_sz, i, j, kk)};
            }
}

/// Coarse-fine residual moments for one refluxed face of this leaf.
void apply_reflux_moments(subgrid& g, const reflux_entry& e, double dt) {
    const double V = g.geom.cell_volume();
    for (int b = 0; b < INX; ++b)
        for (int c = 0; c < INX; ++c) {
            const dvec3 M = e.moments[static_cast<std::size_t>(b * INX + c)].m;
            // Residual spin: -dt * sum A_f (t x F) / V, signed by which side
            // of the cell the face is.
            const double sgn = e.dir > 0 ? -1.0 : 1.0;
            int ci, cj, ck;
            axis_cell(e.axis, e.dir > 0 ? INX - 1 : 0, b, c, ci, cj, ck);
            const dvec3 corr = (sgn * dt / V) * M;
            g.interior(f_lx, ci, cj, ck) += corr.x;
            g.interior(f_ly, ci, cj, ck) += corr.y;
            g.interior(f_lz, ci, cj, ck) += corr.z;
        }
}

/// Gravity (+ spin-torque deposits) and rotating frame. They must use the
/// PRE-update state: the FMM solved for that density, so only then does
/// sum(V rho g) vanish to rounding (machine-precision momentum conservation).
void apply_sources(subgrid& g, node_key k, const step_options& opt, double dt,
                   const aligned_vector<double>& old_rho,
                   const aligned_vector<dvec3>& old_s) {
    std::optional<gravity_field> gf;
    if (opt.gravity) gf = opt.gravity(k);
    const double V = g.geom.cell_volume();
    for (int i = 0; i < INX; ++i)
        for (int j = 0; j < INX; ++j)
            for (int kk = 0; kk < INX; ++kk) {
                const std::size_t old_idx =
                    static_cast<std::size_t>(((i * INX) + j) * INX + kk);
                const double rho = old_rho[old_idx];
                const dvec3 s = old_s[old_idx];
                if (gf) {
                    const int cidx = (i * INX + j) * INX + kk;
                    const dvec3 acc{gf->gx[cidx], gf->gy[cidx], gf->gz[cidx]};
                    g.interior(f_sx, i, j, kk) += dt * rho * acc.x;
                    g.interior(f_sy, i, j, kk) += dt * rho * acc.y;
                    g.interior(f_sz, i, j, kk) += dt * rho * acc.z;
                    g.interior(f_egas, i, j, kk) += dt * dot(s, acc);
                    // FMM spin-torque ledger (per-cell total torque -> spin
                    // density).
                    g.interior(f_lx, i, j, kk) += dt * gf->tqx[cidx] / V;
                    g.interior(f_ly, i, j, kk) += dt * gf->tqy[cidx] / V;
                    g.interior(f_lz, i, j, kk) += dt * gf->tqz[cidx] / V;
                }
                if (norm2(opt.omega) > 0.0) {
                    // Rotating frame: Coriolis + centrifugal (pre-update
                    // state, like gravity).
                    const dvec3 r = g.geom.cell_center(i, j, kk);
                    const dvec3 v = s / std::max(rho, rho_floor);
                    const dvec3 a = -2.0 * cross(opt.omega, v) -
                                    cross(opt.omega, cross(opt.omega, r));
                    g.interior(f_sx, i, j, kk) += dt * rho * a.x;
                    g.interior(f_sy, i, j, kk) += dt * rho * a.y;
                    g.interior(f_sz, i, j, kk) += dt * rho * a.z;
                    g.interior(f_egas, i, j, kk) += dt * rho * dot(v, a);
                }
            }
}

/// u0 snapshot layout: [q][i][j][k] over interior cells.
void save_u0(const subgrid& g, aligned_vector<double>& v) {
    v.resize(static_cast<std::size_t>(n_fields) * INX3);
    std::size_t idx = 0;
    for (int q = 0; q < n_fields; ++q)
        for (int i = 0; i < INX; ++i)
            for (int j = 0; j < INX; ++j)
                for (int kk = 0; kk < INX; ++kk, ++idx) {
                    v[idx] = g.interior(q, i, j, kk);
                }
}

/// The full per-leaf update (flux divergence, reflux moments, sources, RK
/// blend, dual-energy bookkeeping + floors), shared verbatim by the
/// barriered and the futurized schedules so they agree bit for bit.
void update_leaf(node_key k, subgrid& g, const leaf_flux_soa& lf, double dt,
                 const step_options& opt,
                 const std::vector<const reflux_entry*>& refl,
                 const aligned_vector<double>* u0) {
    const bool need_sources =
        static_cast<bool>(opt.gravity) || norm2(opt.omega) > 0.0;
    aligned_vector<double> old_rho;
    aligned_vector<dvec3> old_s;
    if (need_sources) snapshot_sources(g, old_rho, old_s);

    const kernel::exec_config cfg = exec_cfg(opt);
    kernel::run_flux_divergence(cfg, g, lf, dt);
    for (const reflux_entry* e : refl) apply_reflux_moments(g, *e, dt);
    if (need_sources) apply_sources(g, k, opt, dt, old_rho, old_s);
    if (u0 != nullptr) kernel::run_blend(cfg, g, *u0);
    // Dual-energy bookkeeping + floors after the blend so the committed
    // state is consistent.
    kernel::run_dual_energy(cfg, g, opt.eos);
}

// ---- CFL -------------------------------------------------------------------

double leaf_max_wave_speed(const subgrid& g, const step_options& opt) {
    return kernel::run_wave_speed(exec_cfg(opt), g, opt.eos);
}

} // namespace

double cfl_timestep(tree& t, const step_options& opt) {
    fill_all_ghosts(t, opt.bc);
    rt::thread_pool& pool =
        opt.pool != nullptr ? *opt.pool : rt::thread_pool::global();
    const std::vector<node_key> leaves = t.leaves_sfc();
    std::vector<double> speeds(leaves.size());
    {
        std::vector<rt::future<void>> fs;
        fs.reserve(leaves.size());
        for (std::size_t idx = 0; idx < leaves.size(); ++idx) {
            fs.push_back(rt::async(pool, [&t, &opt, &speeds, &leaves, idx] {
                speeds[idx] =
                    leaf_max_wave_speed(*t.node(leaves[idx]).fields, opt);
            }));
        }
        rt::apex_count("hydro.cfl_tasks", leaves.size());
        for (auto& f : fs) f.get();
    }
    double dt = std::numeric_limits<double>::max();
    for (std::size_t idx = 0; idx < leaves.size(); ++idx) {
        const double dx = t.node(leaves[idx]).fields->geom.dx;
        dt = std::min(dt, opt.cfl * dx / speeds[idx]);
    }
    return dt;
}

namespace {

// ---- barriered schedule ----------------------------------------------------

/// One Euler stage: U <- U + dt * L(U) over all leaves. Ghosts must be
/// filled. If `blend_with` is non-null (second RK stage), the result is
/// 0.5 * (*blend_with) + 0.5 * (U + dt L(U)).
void stage(tree& t, double dt, const step_options& opt,
           const std::unordered_map<node_key, aligned_vector<double>>* blend_with,
           rt::thread_pool& pool) {
    // Pass 1: fluxes for every leaf, in parallel.
    std::unordered_map<node_key, leaf_flux_soa> fluxes;
    std::vector<node_key> leaves = t.leaves_sfc();
    for (const node_key k : leaves) fluxes[k].reset();
    {
        std::vector<rt::future<void>> fs;
        fs.reserve(leaves.size());
        for (const node_key k : leaves) {
            // Offloadable stage: one work item per leaf (all three axis
            // sweeps), batched into fused launches by the executor. A
            // rejected submission falls back to the per-leaf CPU task.
            if (opt.aggregator != nullptr) {
                gpu::work_item item;
                item.kc = kernel_class::hydro;
                item.flops = 3 * flux_sweep_flops;
                item.kernel = [&t, &opt, &fluxes, k](const double*) {
                    const subgrid& g = *t.node(k).fields;
                    leaf_flux_soa& out = fluxes.at(k);
                    for (int axis = 0; axis < 3; ++axis) {
                        compute_axis_fluxes(g, axis, opt, out);
                    }
                };
                if (auto f = opt.aggregator->submit(std::move(item))) {
                    fs.push_back(std::move(*f));
                    continue;
                }
            }
            fs.push_back(rt::async(pool, [&t, &opt, &fluxes, k] {
                const subgrid& g = *t.node(k).fields;
                leaf_flux_soa& out = fluxes.at(k);
                for (int axis = 0; axis < 3; ++axis) {
                    compute_axis_fluxes(g, axis, opt, out);
                }
            }));
        }
        for (auto& f : fs) f.get();
    }

    // Pass 2: reflux coarse faces adjacent to refined same-level neighbors.
    std::vector<reflux_entry> refluxes;
    for (const node_key k : leaves) {
        for (int axis = 0; axis < 3; ++axis) {
            for (int dir = -1; dir <= 1; dir += 2) {
                const node_key nb = key_neighbor(k, {axis == 0 ? dir : 0,
                                                     axis == 1 ? dir : 0,
                                                     axis == 2 ? dir : 0});
                if (nb == invalid_key || !t.contains(nb)) continue;
                if (!t.node(nb).refined) continue;
                reflux_entry e;
                e.leaf = k;
                e.axis = axis;
                e.dir = dir;
                reflux_face(
                    t, k, axis, dir, fluxes.at(k),
                    [&fluxes](node_key c) -> const leaf_flux_soa& {
                        return fluxes.at(c);
                    },
                    e.moments);
                refluxes.push_back(std::move(e));
            }
        }
    }
    std::unordered_map<node_key, std::vector<const reflux_entry*>> refl_of;
    for (const auto& e : refluxes) refl_of[e.leaf].push_back(&e);

    // Pass 3: conservative update + ledger + sources, in parallel.
    {
        const std::vector<const reflux_entry*> no_refl;
        std::vector<rt::future<void>> fs;
        fs.reserve(leaves.size());
        for (const node_key k : leaves) {
            const auto it = refl_of.find(k);
            const auto* refl = it != refl_of.end() ? &it->second : &no_refl;
            fs.push_back(rt::async(pool, [&t, &opt, &fluxes, k, dt, refl,
                                          blend_with] {
                update_leaf(k, *t.node(k).fields, fluxes.at(k), dt, opt, *refl,
                            blend_with != nullptr ? &blend_with->at(k)
                                                  : nullptr);
            }));
        }
        for (auto& f : fs) f.get();
    }
}

double step_barriered(tree& t, const step_options& opt, rt::thread_pool& pool) {
    const double dt = opt.fixed_dt > 0.0 ? opt.fixed_dt : cfl_timestep(t, opt);

    // Save U^n for the RK2 blend.
    std::unordered_map<node_key, aligned_vector<double>> u0;
    for (const node_key k : t.leaves_sfc()) {
        save_u0(*t.node(k).fields, u0[k]);
    }

    if (opt.before_stage) opt.before_stage();
    fill_all_ghosts(t, opt.bc);
    stage(t, dt, opt, nullptr, pool);
    if (opt.before_stage) opt.before_stage();
    fill_all_ghosts(t, opt.bc);
    stage(t, dt, opt, &u0, pool);
    return dt;
}

// ---- futurized schedule ----------------------------------------------------
//
// The per-leaf future pipeline, in the style of the FMM DAG (solver.cpp):
// instead of `fill_all_ghosts` barriers before each RK stage, every ghost
// region fill, restriction, flux sweep, reflux and leaf update is its own
// task gated by when_all() on exactly the data it reads — plus the
// anti-dependencies on tasks still *reading* data it overwrites. Halo
// exchange overlaps compute across the whole step: the second stage's fills
// start as soon as their donor leaves completed stage one, while unrelated
// stage-one updates are still in flight, and the gravity re-solve of the
// coupled driver (before_stage) runs concurrently with the fills and flux
// sweeps of the stage that consumes it.

struct leaf_ctx {
    subgrid* g = nullptr;
    const node_ghost_plan* plan = nullptr;
    leaf_flux_soa fluxes;
    aligned_vector<double> u0;
    std::vector<const reflux_entry*> refluxes;
};

// Race-detector region keys: one logical region per sub-object of a leaf a
// task can touch independently. The keys are synthetic addresses derived
// from stable objects (a subgrid / flux workspace is far larger than the
// small offsets used), so distinct regions never collide and survive for the
// whole step. The names show up in detector reports.
const void* interior_region(const subgrid* g) { return g; }
const void* ghost_region_key(const subgrid* g, int r) {
    return reinterpret_cast<const char*>(g) + 1 + r;
}
const void* flux_region(const leaf_flux_soa* f, int axis) {
    return reinterpret_cast<const char*>(f) + 1 + axis;
}

double step_futurized(tree& t, const step_options& opt, rt::thread_pool& pool) {
    // Serial prologue: plan acquisition (allocates refined-node storage so no
    // task mutates the tree) and the pure-structure task lists.
    const ghost_plan& gp = acquire_ghost_plan(t, opt.bc);
    std::unordered_map<node_key, const node_ghost_plan*> plans;
    std::vector<node_key> refined; // coarse-to-fine order
    plans.reserve(gp.nodes.size());
    for (const auto& np : gp.nodes) {
        plans[np.key] = &np;
        if (!np.leaf) refined.push_back(np.key);
    }

    const std::vector<node_key> leaves = t.leaves_sfc();
    std::unordered_map<node_key, leaf_ctx> ctx;
    ctx.reserve(leaves.size());
    for (const node_key k : leaves) {
        leaf_ctx& lc = ctx[k];
        lc.g = t.node(k).fields.get();
        lc.plan = plans.at(k);
        lc.fluxes.reset();
    }

    // Reflux adjacency (structure only; moments rewritten each stage).
    std::vector<reflux_entry> rentries;
    for (const node_key k : leaves) {
        for (int axis = 0; axis < 3; ++axis) {
            for (int dir = -1; dir <= 1; dir += 2) {
                const node_key nb = key_neighbor(k, {axis == 0 ? dir : 0,
                                                     axis == 1 ? dir : 0,
                                                     axis == 2 ? dir : 0});
                if (nb == invalid_key || !t.contains(nb)) continue;
                if (!t.node(nb).refined) continue;
                rentries.push_back({k, axis, dir, {}});
            }
        }
    }
    for (const auto& e : rentries) ctx.at(e.leaf).refluxes.push_back(&e);

    // Dependency handles are minted by aliasing the shared state (the FMM
    // DAG's trick): when_all() consumers get aliases, the join list gets one
    // alias per task, and get() runs exactly once there.
    const auto alias = [](const rt::future<void>& f) {
        return rt::future<void>(f.state());
    };
    std::vector<rt::future<void>> join;
    std::size_t task_count = 0;

    // Overlap instrumentation: fraction of ghost-fill tasks that completed
    // after the first flux sweep started, i.e. halo exchange that was hidden
    // behind compute instead of serialized before it.
    auto flux_started = std::make_shared<std::atomic<bool>>(false);
    auto fills_total = std::make_shared<std::atomic<std::uint64_t>>(0);
    auto fills_overlapped = std::make_shared<std::atomic<std::uint64_t>>(0);

    // CFL reduction: one task per leaf, joined by when_all into the dt value
    // every update task depends on. The flux sweeps do not need dt, so the
    // whole reduction overlaps them.
    auto dt_val = std::make_shared<double>(opt.fixed_dt);
    rt::future<void> dt_ready;
    if (opt.fixed_dt > 0.0) {
        dt_ready = rt::make_ready_future();
    } else {
        auto speeds = std::make_shared<std::vector<double>>(leaves.size());
        std::vector<double> dxs(leaves.size());
        std::vector<rt::future<void>> cfs;
        cfs.reserve(leaves.size());
        for (std::size_t idx = 0; idx < leaves.size(); ++idx) {
            const node_key k = leaves[idx];
            dxs[idx] = ctx.at(k).g->geom.dx;
            cfs.push_back(rt::async(pool, [&ctx, &opt, speeds, idx, k] {
                sanitize::region_read(interior_region(ctx.at(k).g),
                                      "hydro.interior");
                (*speeds)[idx] = leaf_max_wave_speed(*ctx.at(k).g, opt);
            }));
        }
        rt::apex_count("hydro.cfl_tasks", leaves.size());
        task_count += leaves.size();
        dt_ready = rt::when_all(std::move(cfs))
                       .then(pool, [speeds, dt_val, dxs = std::move(dxs),
                                    cfl = opt.cfl](auto) {
                           double dt = std::numeric_limits<double>::max();
                           for (std::size_t i = 0; i < speeds->size(); ++i) {
                               dt = std::min(dt, cfl * dxs[i] / (*speeds)[i]);
                           }
                           sanitize::region_write(dt_val.get(), "hydro.dt");
                           *dt_val = dt;
                       });
    }
    join.push_back(alias(dt_ready));

    // Producer futures of the previous stage (leaf updates), anti-dependency
    // reader lists, and flux-buffer reader lists carried across stages.
    std::unordered_map<node_key, rt::future<void>> ready;
    std::unordered_map<node_key, std::vector<rt::future<void>>> readers_prev;
    std::unordered_map<node_key, std::vector<rt::future<void>>> fluxreaders_prev;

    for (int s = 0; s < 2; ++s) {
        const bool second = s == 1;

        // Gravity re-solve for this stage: stage one's runs immediately
        // (pre-step state), stage two's as a continuation of all stage-one
        // updates. Fills, restricts and flux sweeps overlap it — the FMM
        // only reads leaf interiors, which no task of this stage writes
        // before its update (and updates wait for gravity).
        rt::future<void> gravity_done;
        if (opt.before_stage) {
            if (!second) {
                gravity_done = rt::async(pool, [&opt] { opt.before_stage(); });
            } else {
                std::vector<rt::future<void>> deps;
                deps.reserve(leaves.size());
                for (const node_key k : leaves) {
                    deps.push_back(alias(ready.at(k)));
                }
                gravity_done = rt::when_all(std::move(deps))
                                   .then(pool, [&opt](auto) {
                                       opt.before_stage();
                                   });
            }
            ++task_count;
        } else {
            gravity_done = rt::make_ready_future();
        }
        join.push_back(alias(gravity_done));

        // 1. Restriction tasks for refined nodes, constructed fine-to-coarse
        // so parents can depend on child restrictions of the same stage.
        std::unordered_map<node_key, rt::future<void>> restrict_f;
        std::unordered_map<node_key, std::vector<rt::future<void>>> readers_cur;
        std::unordered_map<node_key, std::vector<rt::future<void>>>
            fluxreaders_cur;
        for (auto it = refined.rbegin(); it != refined.rend(); ++it) {
            const node_key k = *it;
            std::vector<rt::future<void>> deps;
            for (int c = 0; c < 8; ++c) {
                const node_key ck = key_child(k, c);
                if (!plans.at(ck)->leaf) {
                    deps.push_back(alias(restrict_f.at(ck)));
                } else if (second) {
                    deps.push_back(alias(ready.at(ck)));
                }
            }
            // Anti-dependency: last stage's fills may still read this
            // node's (previously restricted) interior.
            if (auto pr = readers_prev.find(k); pr != readers_prev.end()) {
                for (auto& f : pr->second) deps.push_back(std::move(f));
                pr->second.clear();
            }
            auto f = rt::when_all(std::move(deps)).then(pool, [&t, k](auto) {
                for (int c = 0; c < 8; ++c) {
                    sanitize::region_read(
                        interior_region(t.node(key_child(k, c)).fields.get()),
                        "hydro.interior");
                }
                sanitize::region_write(interior_region(t.node(k).fields.get()),
                                       "hydro.interior");
                restrict_node(t, k);
            });
            for (int c = 0; c < 8; ++c) {
                readers_cur[key_child(k, c)].push_back(alias(f));
            }
            join.push_back(alias(f));
            restrict_f.emplace(k, std::move(f));
            ++task_count;
        }

        // Donor readiness: a refined donor's data is its restriction of this
        // stage; a leaf donor's is its previous-stage update.
        const auto donor_ready = [&](node_key d,
                                     std::vector<rt::future<void>>& deps) {
            if (!plans.at(d)->leaf) {
                deps.push_back(alias(restrict_f.at(d)));
            } else if (second) {
                deps.push_back(alias(ready.at(d)));
            }
        };

        // 2. Ghost-fill tasks: one per region (six faces + edges/corners) of
        // every leaf, gated only on that region's donors.
        std::unordered_map<node_key,
                           std::array<rt::future<void>, n_ghost_regions>>
            fill_f;
        for (const node_key k : leaves) {
            leaf_ctx& lc = ctx.at(k);
            auto& fills = fill_f[k];
            for (int r = 0; r < n_ghost_regions; ++r) {
                const ghost_region_plan& region = lc.plan->regions[r];
                if (region.entries.empty()) {
                    fills[static_cast<std::size_t>(r)] = rt::make_ready_future();
                    continue;
                }
                std::vector<rt::future<void>> deps;
                for (const node_key d : region.donors) donor_ready(d, deps);
                // Anti-dependency: this leaf's previous-stage flux sweeps
                // read the ghost zones this fill overwrites; its update
                // (which waits for them) must complete first.
                if (second) deps.push_back(alias(ready.at(k)));
                auto f = rt::when_all(std::move(deps))
                             .then(pool, [g = lc.g, &region, &t, r, flux_started,
                                          fills_total, fills_overlapped](auto) {
                                 for (const node_key d : region.donors) {
                                     sanitize::region_read(
                                         interior_region(
                                             t.node(d).fields.get()),
                                         "hydro.interior");
                                 }
                                 sanitize::region_write(ghost_region_key(g, r),
                                                        "hydro.ghosts");
                                 apply_ghost_region(*g, region);
                                 fills_total->fetch_add(
                                     1, std::memory_order_relaxed);
                                 if (flux_started->load(
                                         std::memory_order_relaxed)) {
                                     fills_overlapped->fetch_add(
                                         1, std::memory_order_relaxed);
                                 }
                             });
                for (const node_key d : region.donors) {
                    readers_cur[d].push_back(alias(f));
                }
                join.push_back(alias(f));
                fills[static_cast<std::size_t>(r)] = std::move(f);
                ++task_count;
            }
        }

        // 3. Flux sweeps: one task per (leaf, axis), gated on the two face
        // fills of that axis (pencils read face ghosts only) plus the leaf's
        // own previous-stage update, plus any reflux of the previous stage
        // that still reads this leaf's flux buffers.
        std::unordered_map<node_key, std::array<rt::future<void>, 3>> flux_f;
        for (const node_key k : leaves) {
            leaf_ctx& lc = ctx.at(k);
            auto& fx = flux_f[k];
            for (int axis = 0; axis < 3; ++axis) {
                const int rlo = static_cast<int>(ghost_face_region(axis, -1));
                const int rhi = static_cast<int>(ghost_face_region(axis, +1));
                std::vector<rt::future<void>> deps;
                deps.push_back(alias(fill_f.at(k)[static_cast<std::size_t>(rlo)]));
                deps.push_back(alias(fill_f.at(k)[static_cast<std::size_t>(rhi)]));
                if (second) deps.push_back(alias(ready.at(k)));
                // Anti-dependency: previous-stage refluxes still reading
                // this leaf's flux buffers.
                if (auto fr = fluxreaders_prev.find(k);
                    fr != fluxreaders_prev.end()) {
                    for (const auto& f : fr->second) deps.push_back(alias(f));
                }
                // The sweep itself is an offloadable stage: when an
                // aggregation executor is configured, the dependency-released
                // continuation SUBMITS the sweep as a work item (batched into
                // a fused launch) and a bridge promise completes the task's
                // future when the item's slice finishes; otherwise — or when
                // the executor rejects (saturated / injected fault) — the
                // sweep runs inline as before.
                rt::promise<void> done;
                auto f = done.get_future();
                rt::detach(rt::when_all(std::move(deps))
                             .then(pool, [&opt, g = lc.g, lf = &lc.fluxes,
                                          axis, rlo, rhi, flux_started,
                                          done](auto) mutable {
                                 flux_started->store(
                                     true, std::memory_order_release);
                                 sanitize::region_read(interior_region(g),
                                                       "hydro.interior");
                                 sanitize::region_read(ghost_region_key(g, rlo),
                                                       "hydro.ghosts");
                                 sanitize::region_read(ghost_region_key(g, rhi),
                                                       "hydro.ghosts");
                                 sanitize::region_write(flux_region(lf, axis),
                                                        "hydro.flux");
                                 if (opt.aggregator != nullptr) {
                                     gpu::work_item item;
                                     item.kc = kernel_class::hydro;
                                     item.flops = flux_sweep_flops;
                                     item.kernel = [&opt, g, lf,
                                                    axis](const double*) {
                                         compute_axis_fluxes(*g, axis, opt,
                                                             *lf);
                                     };
                                     if (auto af = opt.aggregator->submit(
                                             std::move(item))) {
                                         rt::detach(std::move(*af).then(
                                             [done](rt::future<void>) mutable {
                                                 done.set_value();
                                             }));
                                         return;
                                     }
                                 }
                                 compute_axis_fluxes(*g, axis, opt, *lf);
                                 done.set_value();
                             }));
                join.push_back(alias(f));
                fx[static_cast<std::size_t>(axis)] = std::move(f);
                ++task_count;
            }
        }

        // 4. Reflux tasks: restrict fine boundary fluxes onto the coarse
        // neighbor as soon as the five flux sweeps involved are done.
        std::unordered_map<node_key, std::vector<rt::future<void>>> refl_f;
        for (auto& e : rentries) {
            std::vector<rt::future<void>> deps;
            deps.push_back(
                alias(flux_f.at(e.leaf)[static_cast<std::size_t>(e.axis)]));
            const node_key nb =
                key_neighbor(e.leaf, {e.axis == 0 ? e.dir : 0,
                                      e.axis == 1 ? e.dir : 0,
                                      e.axis == 2 ? e.dir : 0});
            const auto children = face_children(nb, e.axis, e.dir);
            for (const node_key c : children) {
                deps.push_back(
                    alias(flux_f.at(c)[static_cast<std::size_t>(e.axis)]));
            }
            auto f = rt::when_all(std::move(deps))
                         .then(pool, [&t, &ctx, e_ptr = &e, children](auto) {
                             sanitize::region_read(
                                 flux_region(&ctx.at(e_ptr->leaf).fluxes,
                                             e_ptr->axis),
                                 "hydro.flux");
                             for (const node_key c : children) {
                                 sanitize::region_read(
                                     flux_region(&ctx.at(c).fluxes,
                                                 e_ptr->axis),
                                     "hydro.flux");
                             }
                             sanitize::region_write(e_ptr,
                                                    "hydro.reflux_moments");
                             reflux_face(
                                 t, e_ptr->leaf, e_ptr->axis, e_ptr->dir,
                                 ctx.at(e_ptr->leaf).fluxes,
                                 [&ctx](node_key c) -> const leaf_flux_soa& {
                                     return ctx.at(c).fluxes;
                                 },
                                 e_ptr->moments);
                         });
            // The next stage's flux sweeps of the fine children must not
            // overwrite the buffers this reflux reads.
            for (const node_key c : children) {
                fluxreaders_cur[c].push_back(alias(f));
            }
            join.push_back(alias(f));
            refl_f[e.leaf].push_back(std::move(f));
            ++task_count;
        }

        // 5. Update tasks: everything the leaf's update reads or overwrites —
        // its flux sweeps, refluxes into it, every task still reading its
        // interior (fills/restricts of this stage), dt, and gravity.
        std::unordered_map<node_key, rt::future<void>> ready_next;
        for (const node_key k : leaves) {
            leaf_ctx& lc = ctx.at(k);
            std::vector<rt::future<void>> deps;
            for (auto& f : flux_f.at(k)) deps.push_back(alias(f));
            if (auto rf = refl_f.find(k); rf != refl_f.end()) {
                for (auto& f : rf->second) deps.push_back(std::move(f));
            }
            if (auto rc = readers_cur.find(k); rc != readers_cur.end()) {
                for (auto& f : rc->second) deps.push_back(std::move(f));
                rc->second.clear();
            }
            deps.push_back(alias(dt_ready));
            deps.push_back(alias(gravity_done));
            auto f = rt::when_all(std::move(deps))
                         .then(pool, [&opt, k, lc_ptr = &lc, dt_val,
                                      second](auto) {
                             for (int axis = 0; axis < 3; ++axis) {
                                 sanitize::region_read(
                                     flux_region(&lc_ptr->fluxes, axis),
                                     "hydro.flux");
                             }
                             for (const reflux_entry* e : lc_ptr->refluxes) {
                                 sanitize::region_read(
                                     e, "hydro.reflux_moments");
                             }
                             sanitize::region_read(dt_val.get(), "hydro.dt");
                             sanitize::region_write(interior_region(lc_ptr->g),
                                                    "hydro.interior");
                             if (!second) {
                                 sanitize::region_write(&lc_ptr->u0,
                                                        "hydro.u0");
                                 save_u0(*lc_ptr->g, lc_ptr->u0);
                             } else {
                                 sanitize::region_read(&lc_ptr->u0,
                                                       "hydro.u0");
                             }
                             update_leaf(k, *lc_ptr->g, lc_ptr->fluxes,
                                         *dt_val, opt, lc_ptr->refluxes,
                                         second ? &lc_ptr->u0 : nullptr);
                         });
            join.push_back(alias(f));
            ready_next.emplace(k, std::move(f));
            ++task_count;
        }

        ready = std::move(ready_next);
        readers_prev = std::move(readers_cur);
        fluxreaders_prev = std::move(fluxreaders_cur);
    }

    for (auto& f : join) f.get();

    rt::apex_count("hydro.stage_tasks", task_count);
    const std::uint64_t total = fills_total->load(std::memory_order_relaxed);
    if (total > 0) {
        rt::apex_gauge(
            "hydro.ghost_overlap_fraction",
            100 * fills_overlapped->load(std::memory_order_relaxed) / total);
    }
    return *dt_val;
}

// ---- autotuning ------------------------------------------------------------

/// Synthetic fully-filled leaf the width/tile sweep measures on: a smooth,
/// internal-energy-dominated blob with every cell (ghosts included) holding
/// physical values, so no kernel branch sees garbage and no lane hits the
/// guarded-pow slow path more than the production mix would.
const subgrid& tuning_leaf() {
    static const subgrid leaf = [] {
        subgrid g;
        g.geom.origin = {-1.0, -1.0, -1.0};
        g.geom.dx = 2.0 / INX;
        const phys::ideal_gas_eos eos;
        const double gamma = eos.gamma();
        for (int i = 0; i < NX; ++i)
            for (int j = 0; j < NX; ++j)
                for (int kk = 0; kk < NX; ++kk) {
                    const double x = (i - H_BW + 0.5) * g.geom.dx - 1.0;
                    const double y = (j - H_BW + 0.5) * g.geom.dx - 1.0;
                    const double z = (kk - H_BW + 0.5) * g.geom.dx - 1.0;
                    const double r2 = x * x + y * y + z * z;
                    const double rho = 1.0 + 0.5 * std::exp(-r2);
                    const dvec3 v{0.1 * y, -0.1 * x, 0.05 * z};
                    const double p = 1.0 + 0.25 * std::exp(-r2);
                    const double internal = p / (gamma - 1.0);
                    g.at(f_rho, i, j, kk) = rho;
                    g.at(f_sx, i, j, kk) = rho * v.x;
                    g.at(f_sy, i, j, kk) = rho * v.y;
                    g.at(f_sz, i, j, kk) = rho * v.z;
                    g.at(f_egas, i, j, kk) = internal + 0.5 * rho * norm2(v);
                    g.at(f_tau, i, j, kk) = eos.tau_from_internal(internal);
                    for (int s = 0; s < n_passive; ++s) {
                        g.at(first_passive + s, i, j, kk) = rho / n_passive;
                    }
                    g.at(f_lx, i, j, kk) = 0.01 * rho;
                    g.at(f_ly, i, j, kk) = -0.01 * rho;
                    g.at(f_lz, i, j, kk) = 0.02 * rho;
                }
        return g;
    }();
    return leaf;
}

/// Throughput of one candidate geometry: repeated 3-axis flux sweeps over
/// the synthetic leaf, in modeled GFLOP/s (flux_sweep_flops per axis sweep —
/// a consistent figure of merit across candidates, which is all argmax needs).
double measure_leaf_fluxes(const kernel::tuned_config& c,
                           const phys::ideal_gas_eos& eos, bool use_ppm) {
    const subgrid& g = tuning_leaf();
    pencil_workspace ws;
    leaf_flux_soa out;
    out.reset();
    const kernel::exec_config cfg = c.exec();
    double ms = 0.0;
    for (int axis = 0; axis < 3; ++axis) { // warm-up: first touch + icache
        kernel::run_leaf_fluxes(cfg, g, axis, eos, use_ppm, ws, out, &ms);
    }
    constexpr int reps = 6;
    stopwatch sw;
    for (int r = 0; r < reps; ++r) {
        for (int axis = 0; axis < 3; ++axis) {
            kernel::run_leaf_fluxes(cfg, g, axis, eos, use_ppm, ws, out, &ms);
        }
    }
    const double secs = std::max(sw.seconds(), 1e-9);
    return 3.0 * reps * static_cast<double>(flux_sweep_flops) / secs / 1e9;
}

/// Resolve width/tile from the autotune cache, sweeping candidates at first
/// use. The fixed default (full pack width, untiled) is the first candidate,
/// so the tuned pick can never measure worse than it.
step_options resolve_autotune(const step_options& opt) {
    std::vector<kernel::tuned_config> cands;
    for (const int w : {W, 4, 2, 1}) {
        for (const int tile : {0, 16, 32}) {
            kernel::tuned_config c;
            c.width = w;
            c.tile = tile;
            cands.push_back(c);
        }
    }
    const kernel::tuned_config tc = kernel::global_autotune().tune(
        opt.machine, "hydro.leaf_fluxes", kernel::backend_kind::simd, cands,
        [&opt](const kernel::tuned_config& c) {
            return measure_leaf_fluxes(c, opt.eos, opt.use_ppm);
        });
    step_options out = opt;
    out.autotune = false;
    out.use_simd = tc.width > 1;
    out.simd_width = tc.width;
    out.lane_tile = tc.tile;
    return out;
}

} // namespace

double step(tree& t, const step_options& opt) {
    if (opt.autotune) {
        return step(t, resolve_autotune(opt));
    }
    rt::apex_timer timer("hydro::step");
    rt::apex_count("hydro::steps");
    rt::apex_gauge("hydro.simd_width",
                   static_cast<std::uint64_t>(exec_cfg(opt).width));
    rt::thread_pool& pool =
        opt.pool != nullptr ? *opt.pool : rt::thread_pool::global();
    return opt.futurized ? step_futurized(t, opt, pool)
                         : step_barriered(t, opt, pool);
}

totals compute_totals(const tree& t) {
    totals out;
    for (const auto& level : t.levels()) {
        for (const node_key k : level) {
            if (t.node(k).refined) continue;
            const auto& g = *t.node(k).fields;
            const double V = g.geom.cell_volume();
            for (int i = 0; i < INX; ++i)
                for (int j = 0; j < INX; ++j)
                    for (int kk = 0; kk < INX; ++kk) {
                        out.mass += V * g.interior(f_rho, i, j, kk);
                        const dvec3 s{g.interior(f_sx, i, j, kk),
                                      g.interior(f_sy, i, j, kk),
                                      g.interior(f_sz, i, j, kk)};
                        const dvec3 l{g.interior(f_lx, i, j, kk),
                                      g.interior(f_ly, i, j, kk),
                                      g.interior(f_lz, i, j, kk)};
                        out.momentum += V * s;
                        out.angular_momentum +=
                            V * (cross(g.geom.cell_center(i, j, kk), s) + l);
                        out.egas += V * g.interior(f_egas, i, j, kk);
                        out.tau += V * g.interior(f_tau, i, j, kk);
                        for (int s2 = 0; s2 < n_passive; ++s2) {
                            out.passive[s2] +=
                                V * g.interior(first_passive + s2, i, j, kk);
                        }
                    }
        }
    }
    return out;
}

} // namespace octo::hydro

#include "hydro/update.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>
#include <vector>

#include "hydro/flux.hpp"
#include "hydro/reconstruct.hpp"
#include "runtime/apex.hpp"
#include "runtime/future.hpp"
#include "support/aligned.hpp"
#include "support/assert.hpp"

namespace octo::hydro {

using namespace octo::amr;

namespace {

/// Face-flux storage of one leaf: for each axis, (INX+1) x INX x INX state
/// vectors; plane index p along the axis is the face between cells p-1 and p.
struct leaf_fluxes {
    // [axis][(p * INX + b) * INX + c] with (b, c) the transverse coordinates
    // in axis order ((y,z) for x, (x,z) for y, (x,y) for z).
    // Recycled storage: a stage allocates one of these per leaf per RK
    // stage, so the arrays come back out of the buffer_recycler pool.
    aligned_vector<state> f[3];
    leaf_fluxes() {
        for (auto& a : f) a.assign((INX + 1) * INX * INX, state{});
    }
    static int index(int p, int b, int c) { return (p * INX + b) * INX + c; }
};

/// Cell (i,j,k) from axis-ordered (p, b, c).
void axis_cell(int axis, int p, int b, int c, int& i, int& j, int& k) {
    switch (axis) {
        case 0: i = p; j = b; k = c; break;
        case 1: i = b; j = p; k = c; break;
        default: i = b; j = c; k = p; break;
    }
}

/// Gather the pencil of conserved states along `axis` through transverse
/// position (b, c), from cell index -H_BW to INX-1+H_BW (ghosts included).
void gather_pencil(const subgrid& g, int axis, int b, int c,
                   aligned_vector<state>& pencil) {
    pencil.resize(INX + 2 * H_BW);
    for (int p = -H_BW; p < INX + H_BW; ++p) {
        int i, j, k;
        axis_cell(axis, p, b, c, i, j, k);
        auto& u = pencil[static_cast<std::size_t>(p + H_BW)];
        for (int q = 0; q < n_fields; ++q) {
            u[static_cast<std::size_t>(q)] = g.at(q, i + H_BW, j + H_BW, k + H_BW);
        }
    }
}

/// Reconstruct primitive-like variables along a pencil and return per-cell
/// lower/upper face conserved states for cells [-1, INX] (we need face
/// states one cell beyond the interior to form the boundary fluxes).
struct face_states {
    // Index 0 corresponds to cell -1; size INX + 2.
    aligned_vector<state> lo, hi;
};

/// Per-pencil reconstruction scratch, allocated once per leaf (every array
/// below is fully overwritten each pencil, so plain resize is enough).
struct pencil_scratch {
    aligned_vector<state> pencil;
    aligned_vector<double> q, flo, fhi;
    face_states fs;
};

void reconstruct_pencil(const aligned_vector<state>& pencil, bool use_ppm,
                        const phys::ideal_gas_eos& eos, pencil_scratch& sc,
                        face_states& out) {
    const int n = INX + 2; // cells -1 .. INX
    out.lo.assign(n, state{});
    out.hi.assign(n, state{});

    // Variables reconstructed: rho, v, p as primitives; tau, passives and
    // spin as mass fractions (q/rho); the face conserved states are then
    // assembled from the face primitives.
    constexpr int nv = 6 + 1 + n_passive + 3; // rho,v3,p + tau_f + pass_f + l_f
    static_assert(nv <= 16);
    aligned_vector<double>& q = sc.q;
    q.resize(static_cast<std::size_t>(nv) * (INX + 2 * H_BW));
    const int stride = INX + 2 * H_BW;
    for (int p = 0; p < stride; ++p) {
        const auto& u = pencil[static_cast<std::size_t>(p)];
        const primitives pr = to_primitives(u, eos);
        double* col = q.data();
        col[0 * stride + p] = pr.rho;
        col[1 * stride + p] = pr.v.x;
        col[2 * stride + p] = pr.v.y;
        col[3 * stride + p] = pr.v.z;
        col[4 * stride + p] = pr.p;
        col[5 * stride + p] = u[f_tau] / pr.rho;
        for (int s = 0; s < n_passive; ++s) {
            col[(6 + s) * stride + p] = u[first_passive + s] / pr.rho;
        }
        col[(6 + n_passive) * stride + p] = u[f_lx] / pr.rho;
        col[(7 + n_passive) * stride + p] = u[f_ly] / pr.rho;
        col[(8 + n_passive) * stride + p] = u[f_lz] / pr.rho;
    }

    // Reconstruct each variable over cells [-1, INX] (n cells), which needs
    // ghosts at -3..-2 and INX+1..INX+2: available with H_BW = 3.
    aligned_vector<double>& flo = sc.flo;
    aligned_vector<double>& fhi = sc.fhi;
    flo.resize(static_cast<std::size_t>(nv) * n);
    fhi.resize(static_cast<std::size_t>(nv) * n);
    for (int v = 0; v < nv; ++v) {
        const double* base = q.data() + v * stride + (H_BW - 1); // cell -1
        if (use_ppm) {
            ppm_reconstruct(base, n, flo.data() + v * n, fhi.data() + v * n);
        } else {
            pcm_reconstruct(base, n, flo.data() + v * n, fhi.data() + v * n);
        }
    }

    // Assemble conserved face states.
    const double gamma = eos.gamma();
    for (int cidx = 0; cidx < n; ++cidx) {
        for (int side = 0; side < 2; ++side) {
            const double* f = (side == 0 ? flo.data() : fhi.data());
            state& u = (side == 0 ? out.lo : out.hi)[static_cast<std::size_t>(cidx)];
            const double rho = std::max(f[0 * n + cidx], rho_floor);
            const dvec3 v{f[1 * n + cidx], f[2 * n + cidx], f[3 * n + cidx]};
            const double p = std::max(f[4 * n + cidx], 0.0);
            const double internal = p / (gamma - 1.0);
            u[f_rho] = rho;
            u[f_sx] = rho * v.x;
            u[f_sy] = rho * v.y;
            u[f_sz] = rho * v.z;
            u[f_egas] = internal + 0.5 * rho * norm2(v);
            u[f_tau] = std::max(f[5 * n + cidx], 0.0) * rho;
            for (int s = 0; s < n_passive; ++s) {
                u[first_passive + s] = f[(6 + s) * n + cidx] * rho;
            }
            u[f_lx] = f[(6 + n_passive) * n + cidx] * rho;
            u[f_ly] = f[(7 + n_passive) * n + cidx] * rho;
            u[f_lz] = f[(8 + n_passive) * n + cidx] * rho;
        }
    }
}

/// Compute all face fluxes of one leaf. Returns the max signal speed seen.
double compute_leaf_fluxes(const subgrid& g, const step_options& opt,
                           leaf_fluxes& out) {
    double max_speed = 0.0;
    pencil_scratch sc;
    face_states& fs = sc.fs;
    for (int axis = 0; axis < 3; ++axis) {
        for (int b = 0; b < INX; ++b) {
            for (int c = 0; c < INX; ++c) {
                gather_pencil(g, axis, b, c, sc.pencil);
                reconstruct_pencil(sc.pencil, opt.use_ppm, opt.eos, sc, fs);
                // Face p (between cells p-1 and p) for p in [0, INX]:
                // left state = hi of cell p-1, right state = lo of cell p.
                for (int p = 0; p <= INX; ++p) {
                    const state& uL = fs.hi[static_cast<std::size_t>(p)];     // cell p-1
                    const state& uR = fs.lo[static_cast<std::size_t>(p + 1)]; // cell p
                    out.f[axis][static_cast<std::size_t>(leaf_fluxes::index(p, b, c))] =
                        kt_flux(uL, uR, axis, opt.eos, &max_speed);
                }
            }
        }
    }
    return max_speed;
}

struct reflux_moment {
    dvec3 m{0, 0, 0};
};

/// Replace the coarse side's boundary fluxes with the restriction of the
/// fine side's, and collect the tangential moment needed by the angular
/// momentum ledger (see step()). Returns per-face-cell moments.
void reflux_face(tree& t, node_key coarse, int axis, int dir,
                 std::unordered_map<node_key, leaf_fluxes>& fluxes,
                 std::vector<reflux_moment>& moments) {
    const node_key nb = key_neighbor(coarse, {axis == 0 ? dir : 0,
                                              axis == 1 ? dir : 0,
                                              axis == 2 ? dir : 0});
    OCTO_ASSERT(nb != invalid_key && t.contains(nb) && t.node(nb).refined);

    auto& cf = fluxes.at(coarse);
    const box_geometry cg = t.geometry(coarse);
    const double dxf = cg.dx / 2.0;

    // Coarse boundary plane index and the fine plane on the children.
    const int cplane = dir > 0 ? INX : 0;
    const int fplane = dir > 0 ? 0 : INX;

    moments.assign(INX * INX, reflux_moment{});

    for (int b = 0; b < INX; ++b) {
        for (int c = 0; c < INX; ++c) {
            // Child of nb covering coarse transverse cell (b, c): the child
            // must touch the shared face: its octant bit along `axis` is 0
            // for dir>0 (the -axis side of nb), 1 for dir<0.
            int obit[3];
            obit[axis] = dir > 0 ? 0 : 1;
            // Transverse axes in axis order.
            const int ta = axis == 0 ? 1 : 0;
            const int tb = axis == 2 ? 1 : 2;
            obit[ta] = b / (INX / 2);
            obit[tb] = c / (INX / 2);
            const int oct = obit[0] | (obit[1] << 1) | (obit[2] << 2);
            const node_key child = key_child(nb, oct);
            OCTO_ASSERT(t.contains(child));
            const auto& ff = fluxes.at(child);

            state sum{};
            dvec3 moment{0, 0, 0};
            // Coarse face center (for the tangential moment).
            int ci, cj, ck;
            axis_cell(axis, cplane, b, c, ci, cj, ck);
            dvec3 face_center = cg.cell_center(ci, cj, ck);
            face_center[axis] -= 0.5 * cg.dx; // center of the lower face of cell

            const box_geometry fg = t.geometry(child);
            for (int db = 0; db < 2; ++db) {
                for (int dc = 0; dc < 2; ++dc) {
                    const int fb = 2 * (b % (INX / 2)) + db;
                    const int fc = 2 * (c % (INX / 2)) + dc;
                    const state& f =
                        ff.f[axis][static_cast<std::size_t>(
                            leaf_fluxes::index(fplane, fb, fc))];
                    for (int q = 0; q < n_fields; ++q) sum[q] += f[q];
                    // Fine face center.
                    int fi, fj, fk;
                    axis_cell(axis, fplane, fb, fc, fi, fj, fk);
                    dvec3 fcc = fg.cell_center(fi, fj, fk);
                    fcc[axis] -= 0.5 * fg.dx;
                    dvec3 tang = fcc - face_center;
                    tang[axis] = 0.0;
                    const dvec3 Fs{f[f_sx], f[f_sy], f[f_sz]};
                    moment += cross(tang, Fs) * (dxf * dxf); // A_f * (t x F)
                }
            }
            state& cflux = cf.f[axis][static_cast<std::size_t>(
                leaf_fluxes::index(cplane, b, c))];
            for (int q = 0; q < n_fields; ++q) cflux[q] = sum[q] / 4.0;
            moments[static_cast<std::size_t>(b * INX + c)].m = moment;
        }
    }
}

} // namespace

double cfl_timestep(tree& t, const step_options& opt) {
    fill_all_ghosts(t, opt.bc);
    double dt = std::numeric_limits<double>::max();
    for (const auto& level : t.levels()) {
        for (const node_key k : level) {
            if (t.node(k).refined) continue;
            const auto& g = *t.node(k).fields;
            double max_speed = 1e-30;
            for (int i = 0; i < INX; ++i)
                for (int j = 0; j < INX; ++j)
                    for (int kk = 0; kk < INX; ++kk) {
                        state u;
                        for (int q = 0; q < n_fields; ++q) {
                            u[static_cast<std::size_t>(q)] =
                                g.interior(q, i, j, kk);
                        }
                        const primitives pr = to_primitives(u, opt.eos);
                        for (int a = 0; a < 3; ++a) {
                            max_speed = std::max(max_speed, max_wave_speed(pr, a));
                        }
                    }
            dt = std::min(dt, opt.cfl * g.geom.dx / max_speed);
        }
    }
    return dt;
}

namespace {

/// One Euler stage: U <- U + dt * L(U) over all leaves. Ghosts must be
/// filled. If `blend_with` is non-null (second RK stage), the result is
/// 0.5 * (*blend_with) + 0.5 * (U + dt L(U)).
void stage(tree& t, double dt, const step_options& opt,
           const std::unordered_map<node_key, aligned_vector<double>>* blend_with,
           rt::thread_pool& pool) {
    // Pass 1: fluxes for every leaf, in parallel.
    std::unordered_map<node_key, leaf_fluxes> fluxes;
    std::vector<node_key> leaves = t.leaves_sfc();
    for (const node_key k : leaves) fluxes.emplace(k, leaf_fluxes{});
    {
        std::vector<rt::future<void>> fs;
        fs.reserve(leaves.size());
        for (const node_key k : leaves) {
            fs.push_back(rt::async(pool, [&t, &opt, &fluxes, k] {
                compute_leaf_fluxes(*t.node(k).fields, opt, fluxes.at(k));
            }));
        }
        for (auto& f : fs) f.get();
    }

    // Pass 2: reflux coarse faces adjacent to refined same-level neighbors.
    // Key: (leaf, axis, dir) -> per-face-cell tangential moments.
    struct reflux_entry {
        node_key leaf;
        int axis;
        int dir;
        std::vector<reflux_moment> moments;
    };
    std::vector<reflux_entry> refluxes;
    for (const node_key k : leaves) {
        for (int axis = 0; axis < 3; ++axis) {
            for (int dir = -1; dir <= 1; dir += 2) {
                const node_key nb = key_neighbor(k, {axis == 0 ? dir : 0,
                                                     axis == 1 ? dir : 0,
                                                     axis == 2 ? dir : 0});
                if (nb == invalid_key || !t.contains(nb)) continue;
                if (!t.node(nb).refined) continue;
                reflux_entry e;
                e.leaf = k;
                e.axis = axis;
                e.dir = dir;
                reflux_face(t, k, axis, dir, fluxes, e.moments);
                refluxes.push_back(std::move(e));
            }
        }
    }

    // Pass 3: conservative update + ledger + sources, in parallel.
    {
        std::vector<rt::future<void>> fs;
        fs.reserve(leaves.size());
        for (const node_key k : leaves) {
            fs.push_back(rt::async(pool, [&, k] {
                subgrid& g = *t.node(k).fields;
                const auto& lf = fluxes.at(k);
                const double dx = g.geom.dx;
                const double lambda = dt / dx;

                // Pre-update density/momentum for the source terms.
                aligned_vector<double> old_rho(INX3);
                aligned_vector<dvec3> old_s(INX3);
                for (int i = 0; i < INX; ++i)
                    for (int j = 0; j < INX; ++j)
                        for (int kk = 0; kk < INX; ++kk) {
                            const auto c = static_cast<std::size_t>(
                                ((i * INX) + j) * INX + kk);
                            old_rho[c] = g.interior(f_rho, i, j, kk);
                            old_s[c] = {g.interior(f_sx, i, j, kk),
                                        g.interior(f_sy, i, j, kk),
                                        g.interior(f_sz, i, j, kk)};
                        }

                for (int i = 0; i < INX; ++i)
                    for (int j = 0; j < INX; ++j)
                        for (int kk = 0; kk < INX; ++kk) {
                            state du{};
                            dvec3 dl{0, 0, 0}; // spin ledger
                            for (int axis = 0; axis < 3; ++axis) {
                                int p, b, c;
                                switch (axis) {
                                    case 0: p = i; b = j; c = kk; break;
                                    case 1: p = j; b = i; c = kk; break;
                                    default: p = kk; b = i; c = j; break;
                                }
                                const state& fl = lf.f[axis][static_cast<std::size_t>(
                                    leaf_fluxes::index(p, b, c))];
                                const state& fh = lf.f[axis][static_cast<std::size_t>(
                                    leaf_fluxes::index(p + 1, b, c))];
                                for (int q = 0; q < n_fields; ++q) {
                                    du[static_cast<std::size_t>(q)] -=
                                        lambda * (fh[static_cast<std::size_t>(q)] -
                                                  fl[static_cast<std::size_t>(q)]);
                                }
                                // Angular-momentum ledger: each face's
                                // momentum transport carries L about the face
                                // center; the cell-centered update loses
                                // (dx e_a) x F per face pair. Each adjacent
                                // cell absorbs -1/2 dt e_a x F into its spin.
                                dvec3 ea{0, 0, 0};
                                ea[axis] = 1.0;
                                const dvec3 Fl{fl[f_sx], fl[f_sy], fl[f_sz]};
                                const dvec3 Fh{fh[f_sx], fh[f_sy], fh[f_sz]};
                                dl -= 0.5 * dt * cross(ea, Fl);
                                dl -= 0.5 * dt * cross(ea, Fh);
                            }
                            for (int q = 0; q < n_fields; ++q) {
                                g.interior(q, i, j, kk) +=
                                    du[static_cast<std::size_t>(q)];
                            }
                            g.interior(f_lx, i, j, kk) += dl.x;
                            g.interior(f_ly, i, j, kk) += dl.y;
                            g.interior(f_lz, i, j, kk) += dl.z;
                        }

                // Coarse-fine residual moments for this leaf's refluxed faces.
                for (const auto& e : refluxes) {
                    if (e.leaf != k) continue;
                    const double V = g.geom.cell_volume();
                    for (int b = 0; b < INX; ++b)
                        for (int c = 0; c < INX; ++c) {
                            const dvec3 M =
                                e.moments[static_cast<std::size_t>(b * INX + c)].m;
                            // Residual spin: -dt * sum A_f (t x F) / V,
                            // signed by which side of the cell the face is.
                            const double sgn = e.dir > 0 ? -1.0 : 1.0;
                            int ci, cj, ck;
                            axis_cell(e.axis, e.dir > 0 ? INX - 1 : 0, b, c, ci,
                                      cj, ck);
                            const dvec3 corr = (sgn * dt / V) * M;
                            g.interior(f_lx, ci, cj, ck) += corr.x;
                            g.interior(f_ly, ci, cj, ck) += corr.y;
                            g.interior(f_lz, ci, cj, ck) += corr.z;
                        }
                }

                // Sources: gravity (+ spin-torque deposits) and rotating
                // frame. They must use the PRE-update state: the FMM solved
                // for that density, so only then does sum(V rho g) vanish to
                // rounding (machine-precision momentum conservation).
                std::optional<gravity_field> gf;
                if (opt.gravity) gf = opt.gravity(k);
                const double V = g.geom.cell_volume();
                for (int i = 0; i < INX; ++i)
                    for (int j = 0; j < INX; ++j)
                        for (int kk = 0; kk < INX; ++kk) {
                            const std::size_t old_idx = static_cast<std::size_t>(
                                ((i * INX) + j) * INX + kk);
                            const double rho = old_rho[old_idx];
                            const dvec3 s = old_s[old_idx];
                            if (gf) {
                                const int cidx = (i * INX + j) * INX + kk;
                                const dvec3 acc{gf->gx[cidx], gf->gy[cidx],
                                                gf->gz[cidx]};
                                g.interior(f_sx, i, j, kk) += dt * rho * acc.x;
                                g.interior(f_sy, i, j, kk) += dt * rho * acc.y;
                                g.interior(f_sz, i, j, kk) += dt * rho * acc.z;
                                g.interior(f_egas, i, j, kk) += dt * dot(s, acc);
                                // FMM spin-torque ledger (per-cell total
                                // torque -> spin density).
                                g.interior(f_lx, i, j, kk) +=
                                    dt * gf->tqx[cidx] / V;
                                g.interior(f_ly, i, j, kk) +=
                                    dt * gf->tqy[cidx] / V;
                                g.interior(f_lz, i, j, kk) +=
                                    dt * gf->tqz[cidx] / V;
                            }
                            if (norm2(opt.omega) > 0.0) {
                                // Rotating frame: Coriolis + centrifugal
                                // (pre-update state, like gravity).
                                const dvec3 r = g.geom.cell_center(i, j, kk);
                                const dvec3 v = s / std::max(rho, rho_floor);
                                const dvec3 a =
                                    -2.0 * cross(opt.omega, v) -
                                    cross(opt.omega, cross(opt.omega, r));
                                g.interior(f_sx, i, j, kk) += dt * rho * a.x;
                                g.interior(f_sy, i, j, kk) += dt * rho * a.y;
                                g.interior(f_sz, i, j, kk) += dt * rho * a.z;
                                g.interior(f_egas, i, j, kk) +=
                                    dt * rho * dot(v, a);
                            }
                        }

                // RK blend.
                if (blend_with != nullptr) {
                    const auto& u0 = blend_with->at(k);
                    std::size_t idx = 0;
                    for (int q = 0; q < n_fields; ++q)
                        for (int i = 0; i < INX; ++i)
                            for (int j = 0; j < INX; ++j)
                                for (int kk = 0; kk < INX; ++kk, ++idx) {
                                    double& u = g.interior(q, i, j, kk);
                                    u = 0.5 * (u0[idx] + u);
                                }
                }

                // Dual-energy bookkeeping + floors (after the blend so the
                // committed state is consistent).
                for (int i = 0; i < INX; ++i)
                    for (int j = 0; j < INX; ++j)
                        for (int kk = 0; kk < INX; ++kk) {
                            double& rho = g.interior(f_rho, i, j, kk);
                            rho = std::max(rho, rho_floor);
                            const dvec3 s{g.interior(f_sx, i, j, kk),
                                          g.interior(f_sy, i, j, kk),
                                          g.interior(f_sz, i, j, kk)};
                            const double ke = 0.5 * norm2(s) / rho;
                            double& E = g.interior(f_egas, i, j, kk);
                            double& tau = g.interior(f_tau, i, j, kk);
                            tau = std::max(tau, tau_floor);
                            const double from_total = E - ke;
                            if (from_total > opt.eos.de_switch() * E &&
                                from_total > 0.0) {
                                // Low-Mach: total energy is reliable; sync tau.
                                tau = opt.eos.tau_from_internal(from_total);
                            } else {
                                // High-Mach: rebuild E from the tracer.
                                E = ke + opt.eos.internal_from_tau(tau);
                            }
                        }
            }));
        }
        for (auto& f : fs) f.get();
    }
}

} // namespace

double step(tree& t, const step_options& opt) {
    rt::apex_timer timer("hydro::step");
    rt::apex_count("hydro::steps");
    rt::thread_pool& pool =
        opt.pool != nullptr ? *opt.pool : rt::thread_pool::global();

    const double dt = opt.fixed_dt > 0.0 ? opt.fixed_dt : cfl_timestep(t, opt);

    // Save U^n for the RK2 blend.
    std::unordered_map<node_key, aligned_vector<double>> u0;
    for (const node_key k : t.leaves_sfc()) {
        const auto& g = *t.node(k).fields;
        auto& v = u0[k];
        v.reserve(static_cast<std::size_t>(n_fields) * INX3);
        for (int q = 0; q < n_fields; ++q)
            for (int i = 0; i < INX; ++i)
                for (int j = 0; j < INX; ++j)
                    for (int kk = 0; kk < INX; ++kk) {
                        v.push_back(g.interior(q, i, j, kk));
                    }
    }

    if (opt.before_stage) opt.before_stage();
    fill_all_ghosts(t, opt.bc);
    stage(t, dt, opt, nullptr, pool);
    if (opt.before_stage) opt.before_stage();
    fill_all_ghosts(t, opt.bc);
    stage(t, dt, opt, &u0, pool);
    return dt;
}

totals compute_totals(const tree& t) {
    totals out;
    for (const auto& level : t.levels()) {
        for (const node_key k : level) {
            if (t.node(k).refined) continue;
            const auto& g = *t.node(k).fields;
            const double V = g.geom.cell_volume();
            for (int i = 0; i < INX; ++i)
                for (int j = 0; j < INX; ++j)
                    for (int kk = 0; kk < INX; ++kk) {
                        out.mass += V * g.interior(f_rho, i, j, kk);
                        const dvec3 s{g.interior(f_sx, i, j, kk),
                                      g.interior(f_sy, i, j, kk),
                                      g.interior(f_sz, i, j, kk)};
                        const dvec3 l{g.interior(f_lx, i, j, kk),
                                      g.interior(f_ly, i, j, kk),
                                      g.interior(f_lz, i, j, kk)};
                        out.momentum += V * s;
                        out.angular_momentum +=
                            V * (cross(g.geom.cell_center(i, j, kk), s) + l);
                        out.egas += V * g.interior(f_egas, i, j, kk);
                        out.tau += V * g.interior(f_tau, i, j, kk);
                        for (int s2 = 0; s2 < n_passive; ++s2) {
                            out.passive[s2] +=
                                V * g.interior(first_passive + s2, i, j, kk);
                        }
                    }
        }
    }
    return out;
}

} // namespace octo::hydro

#pragma once
// Exact solver for the 1-D Riemann problem of the Euler equations (Toro's
// classic iterative star-region solver). This is the analytic reference for
// the Sod shock-tube verification test (paper §4.2: "The first two are
// purely hydrodynamic tests: the Sod shock tube and the Sedov-Taylor blast
// wave. Both have analytical solutions which we can use for comparisons.").

namespace octo::hydro {

struct riemann_state {
    double rho;
    double u; ///< velocity
    double p;
};

/// Sample the exact solution of the Riemann problem (left, right) at
/// similarity coordinate xi = x/t. `gamma` is the adiabatic index.
riemann_state riemann_exact(const riemann_state& left, const riemann_state& right,
                            double xi, double gamma);

/// Canonical Sod initial data: (1, 0, 1) | (0.125, 0, 0.1).
riemann_state sod_left();
riemann_state sod_right();

} // namespace octo::hydro

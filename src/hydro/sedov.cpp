#include "hydro/sedov.hpp"

#include <cmath>

#include "support/assert.hpp"

namespace octo::hydro {
namespace {

// Self-similar profile functions behind the shock in lambda = r/R:
//   u = Vs U(lambda), rho = rho0 Omega(lambda), p = rho0 Vs^2 P(lambda),
// with the strong-shock boundary values at lambda = 1 and the ODE system
// (derived from the Euler equations with R ~ t^(2/5)):
//   (U - l) Omega'       = -Omega (U' + 2U/l)
//   (U - l) U' + P'/Omega = (3/2) U
//   (U - l) (P'/P - gamma Omega'/Omega) = 3
struct profile {
    double U, Om, P;
};

void derivs(double l, const profile& s, double gamma, profile& d) {
    const double Ul = s.U - l;
    const double denom = gamma - s.Om * Ul * Ul / s.P;
    const double num = 3.0 - 1.5 * s.U * s.Om * Ul / s.P - 2.0 * gamma * s.U / l;
    d.U = num / denom;
    d.Om = -s.Om * (d.U + 2.0 * s.U / l) / Ul;
    d.P = s.Om * (1.5 * s.U - Ul * d.U);
}

} // namespace

sedov_solution sedov_solve(double gamma) {
    OCTO_ASSERT(gamma > 1.0);
    profile s{2.0 / (gamma + 1.0), (gamma + 1.0) / (gamma - 1.0), 2.0 / (gamma + 1.0)};

    // RK4 inward from the shock; accumulate the energy integral
    //   I = int_0^1 (1/2 Omega U^2 + P/(gamma-1)) lambda^2 dlambda.
    const double l_end = 1e-4;
    const int nsteps = 20000;
    const double h = -(1.0 - l_end) / nsteps;
    double l = 1.0;
    double I = 0.0;
    auto integrand = [&](double ll, const profile& p) {
        return (0.5 * p.Om * p.U * p.U + p.P / (gamma - 1.0)) * ll * ll;
    };
    for (int i = 0; i < nsteps; ++i) {
        profile k1, k2, k3, k4, tmp;
        derivs(l, s, gamma, k1);
        tmp = {s.U + 0.5 * h * k1.U, s.Om + 0.5 * h * k1.Om, s.P + 0.5 * h * k1.P};
        derivs(l + 0.5 * h, tmp, gamma, k2);
        tmp = {s.U + 0.5 * h * k2.U, s.Om + 0.5 * h * k2.Om, s.P + 0.5 * h * k2.P};
        derivs(l + 0.5 * h, tmp, gamma, k3);
        tmp = {s.U + h * k3.U, s.Om + h * k3.Om, s.P + h * k3.P};
        derivs(l + h, tmp, gamma, k4);

        // Trapezoid on the energy integral (h is negative: integrate down).
        profile next{s.U + h / 6.0 * (k1.U + 2 * k2.U + 2 * k3.U + k4.U),
                     s.Om + h / 6.0 * (k1.Om + 2 * k2.Om + 2 * k3.Om + k4.Om),
                     s.P + h / 6.0 * (k1.P + 2 * k2.P + 2 * k3.P + k4.P)};
        I += -h * 0.5 * (integrand(l, s) + integrand(l + h, next));
        s = next;
        l += h;
    }

    sedov_solution out;
    out.gamma = gamma;
    // E = 4 pi rho0 Vs^2 R^3 I with Vs = (2/5) R/t:
    // E = (16 pi / 25) rho0 R^5 / t^2 * I  =>  alpha = 16 pi I / 25.
    out.alpha = 16.0 * M_PI * I / 25.0;
    return out;
}

double sedov_solution::shock_radius(double E, double rho0, double t) const {
    return std::pow(E * t * t / (alpha * rho0), 0.2);
}

double sedov_solution::density_jump() const { return (gamma + 1.0) / (gamma - 1.0); }

} // namespace octo::hydro

#pragma once
// Sedov–Taylor point-blast similarity solution — the second analytic
// reference of the verification suite (paper §4.2). The spherical blast of
// energy E into a cold uniform medium of density rho0 has shock radius
//   R(t) = (E t^2 / (alpha rho0))^(1/5),
// with alpha a gamma-dependent constant obtained by integrating the
// self-similar profiles (alpha ~ 0.851 for gamma = 1.4).

namespace octo::hydro {

struct sedov_solution {
    double gamma;
    double alpha; ///< energy integral constant

    /// Shock radius at time t for blast energy E into density rho0.
    double shock_radius(double E, double rho0, double t) const;
    /// Post-shock (strong-shock) density jump rho2/rho0.
    double density_jump() const;
};

/// Compute the Sedov alpha constant for `gamma` by numerically integrating
/// the self-similar energy integral.
sedov_solution sedov_solve(double gamma);

} // namespace octo::hydro

#pragma once
// Kurganov–Tadmor central-upwind numerical flux (paper §4.2: "Octo-Tiger
// uses the central advection scheme of [Kurganov & Tadmor 2000]").

#include "hydro/state.hpp"

namespace octo::hydro {

/// Central-upwind flux at a face along axis `a` from the left/right states.
///   F = (a+ F(UL) - a- F(UR)) / (a+ - a-) + (a+ a-)/(a+ - a-) (UR - UL)
/// with a+ = max(vL+cL, vR+cR, 0) and a- = min(vL-cL, vR-cR, 0).
/// Also returns the maximal absolute signal speed for CFL control.
state kt_flux(const state& uL, const state& uR, int a,
              const phys::ideal_gas_eos& eos, double* max_speed = nullptr);

} // namespace octo::hydro

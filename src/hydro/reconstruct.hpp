#pragma once
// PPM reconstruction (Colella & Woodward 1984), used by Octo-Tiger to
// compute the thermodynamic variables at cell faces (paper §4.2).
//
// Reconstruction operates on one 1-D pencil at a time: given cell averages
// q[-2..n+1] (n interior cells plus two ghosts each side), produce left/right
// face states qL[i], qR[i] for each cell i, where qL is the value at the
// cell's lower face and qR at its upper face, monotonicity-limited.

#include <cstddef>

namespace octo::hydro {

/// PPM face values with the standard monotonicity limiter.
/// `q` points at the first interior cell; q[-2], q[-1], q[n], q[n+1] must be
/// valid ghost values. Writes qface_lo[i] and qface_hi[i] for i in [0, n).
void ppm_reconstruct(const double* q, int n, double* qface_lo, double* qface_hi);

/// Piecewise-constant fallback (first order), used in ablation benches.
void pcm_reconstruct(const double* q, int n, double* qface_lo, double* qface_hi);

} // namespace octo::hydro

#pragma once
// SoA pencil kernels for the hydro hot path (paper §4.3: "we changed it to a
// stencil-based approach and are now utilizing a struct-of-arrays
// datastructure", which together with Vc vectorization accounts for the
// 1.90–2.22x hydro speedup of the ablation study).
//
// The scalar path reconstructs one (axis, b, c) pencil at a time with the
// cell state held as an array-of-structs. Here the 64 transverse pencils of
// one sweep axis are processed together: every quantity becomes a plane of
// 64 lanes (the transverse cells) per pencil position, and the PPM limiter,
// the dual-energy switch and the Kurganov–Tadmor flux run on
// `simd::pack<double, W>` with masked selects instead of branches — the
// along-axis data dependencies of the reconstruction never cross lanes, so
// the kernel needs no shuffles. Spin (the Després–Labourasse angular
// momentum fields) is reconstructed and fluxed exactly like the scalar path,
// so the L ledger survives vectorization.

#include "amr/subgrid.hpp"
#include "hydro/state.hpp"
#include "physics/eos.hpp"
#include "simd/pack.hpp"
#include "support/aligned.hpp"

namespace octo::hydro {

/// Pencil geometry shared by the scalar and SIMD flux sweeps.
inline constexpr int pencil_len = amr::INX + 2 * amr::H_BW; ///< cells incl. ghosts
inline constexpr int pencil_lanes = amr::INX * amr::INX;    ///< transverse pencils
inline constexpr int recon_cells = amr::INX + 2;            ///< cells -1..INX
inline constexpr int n_faces = amr::INX + 1;
/// Reconstructed variables: rho, v, p as primitives; tau, passives and spin
/// as mass fractions (q/rho).
inline constexpr int n_recon_vars = 6 + amr::n_passive + 3;
/// Fields transported by the hydro fluxes (radiation moments ride on the
/// sub-grids but are advanced by the radiation solver, not here).
inline constexpr int n_hydro_fields = amr::f_frac_atmosphere + 1;

/// Face-flux storage of one leaf, struct-of-arrays: for each axis, n_fields
/// planes of (INX+1) x INX x INX face values. Plane index p along the axis
/// is the face between cells p-1 and p. Recycled storage.
struct leaf_flux_soa {
    aligned_vector<double> f[3];
    static constexpr int plane_size = n_faces * pencil_lanes;

    void reset() {
        for (auto& a : f) {
            a.assign(static_cast<std::size_t>(amr::n_fields) * plane_size, 0.0);
        }
    }

    double* plane(int axis, int q) {
        return f[axis].data() + static_cast<std::size_t>(q) * plane_size;
    }
    const double* plane(int axis, int q) const {
        return f[axis].data() + static_cast<std::size_t>(q) * plane_size;
    }

    /// Flat face index within one field plane: p the face plane along the
    /// axis, (b, c) the transverse cell in axis order ((y,z) for x, (x,z)
    /// for y, (x,y) for z). Axes 0/1 are face-plane-major so the conserved
    /// update's innermost-k loads are contiguous; axis 2 is transverse-major
    /// so faces at fixed (i, j) are contiguous in p for the same reason.
    static constexpr int findex(int axis, int p, int b, int c) {
        return axis == 2 ? (b * amr::INX + c) * n_faces + p
                         : (p * amr::INX + b) * amr::INX + c;
    }

    double& at(int axis, int q, int p, int b, int c) {
        return plane(axis, q)[findex(axis, p, b, c)];
    }
    double at(int axis, int q, int p, int b, int c) const {
        return plane(axis, q)[findex(axis, p, b, c)];
    }
};

/// Recycled scratch of one SIMD flux sweep (all arrays fully overwritten
/// each call, so resize-without-clear out of the buffer recycler suffices).
struct pencil_workspace {
    aligned_vector<double> u;     ///< [n_fields][pencil_len][lanes] conserved
    aligned_vector<double> qv;    ///< [n_recon_vars][pencil_len][lanes]
    aligned_vector<double> iface; ///< [recon_cells+1][lanes] interface values
    aligned_vector<double> flo;   ///< [n_recon_vars][recon_cells][lanes]
    aligned_vector<double> fhi;   ///< [n_recon_vars][recon_cells][lanes]
};

// The flux-sweep kernels over this layout live in src/kernel/hydro.{hpp,cpp}
// (ISSUE 7): one templated body per kernel, instantiated per execution-space
// policy — the scalar path is the width-1 instantiation of the same source.

} // namespace octo::hydro

#include "hydro/flux.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"

namespace octo::hydro {

using namespace octo::amr;

primitives to_primitives(const state& u, const phys::ideal_gas_eos& eos) {
    primitives pr;
    pr.rho = std::max(u[f_rho], rho_floor);
    pr.v = {u[f_sx] / pr.rho, u[f_sy] / pr.rho, u[f_sz] / pr.rho};
    const double ke = 0.5 * pr.rho * norm2(pr.v);
    pr.internal = std::max(eos.internal_energy(u[f_egas], ke, u[f_tau]), 0.0);
    pr.p = eos.pressure(pr.internal);
    pr.c = eos.sound_speed(pr.rho, pr.internal);
    return pr;
}

state physical_flux(const state& u, const primitives& pr, int a) {
    state f{};
    const double va = pr.v[a];
    for (int q = 0; q < n_fields; ++q) f[q] = u[q] * va;
    // Pressure terms.
    f[f_sx + a] += pr.p;
    f[f_egas] += pr.p * va;
    return f;
}

double max_wave_speed(const primitives& pr, int a) {
    return std::abs(pr.v[a]) + pr.c;
}

state kt_flux(const state& uL, const state& uR, int a,
              const phys::ideal_gas_eos& eos, double* max_speed) {
    const primitives pL = to_primitives(uL, eos);
    const primitives pR = to_primitives(uR, eos);

    const double ap = std::max({pL.v[a] + pL.c, pR.v[a] + pR.c, 0.0});
    const double am = std::min({pL.v[a] - pL.c, pR.v[a] - pR.c, 0.0});
    if (max_speed != nullptr) {
        *max_speed = std::max(*max_speed, std::max(ap, -am));
    }

    state out{};
    if (ap == 0.0 && am == 0.0) return out;

    const state fL = physical_flux(uL, pL, a);
    const state fR = physical_flux(uR, pR, a);
    const double inv = 1.0 / (ap - am);
    for (int q = 0; q < n_fields; ++q) {
        out[q] = (ap * fL[q] - am * fR[q]) * inv + (ap * am) * inv * (uR[q] - uL[q]);
    }
    return out;
}

} // namespace octo::hydro

#pragma once
// The finite-volume update over the AMR tree: PPM reconstruction per pencil,
// Kurganov–Tadmor fluxes, SSP-RK2 time integration with a global timestep
// (as in Octo-Tiger), flux refluxing at coarse–fine boundaries, the
// angular-momentum ledger that keeps total L = sum V (r x s + l) conserved
// to rounding (paper §4.2, Després–Labourasse-style spin absorption), the
// dual-energy bookkeeping, and optional gravity / rotating-frame sources.

#include <functional>
#include <optional>
#include <string>

#include "amr/halo.hpp"
#include "amr/tree.hpp"
#include "hydro/state.hpp"
#include "runtime/thread_pool.hpp"

namespace octo::gpu {
class aggregator; // gpu/aggregator.hpp — kept out of this header's includes
}

namespace octo::hydro {

/// Per-node gravity data supplied by the gravity solver (cell index order
/// (i*8+j)*8+k over interior cells): accelerations and the spin-torque
/// ledger deposits (total torque per cell per unit time).
struct gravity_field {
    const double* gx;
    const double* gy;
    const double* gz;
    const double* tqx;
    const double* tqy;
    const double* tqz;
};

/// Lookup for the gravity of a leaf node; empty means no gravity.
using gravity_lookup =
    std::function<std::optional<gravity_field>(amr::node_key)>;

struct step_options {
    phys::ideal_gas_eos eos{};
    amr::boundary_kind bc = amr::boundary_kind::outflow;
    double cfl = 0.4;
    bool use_ppm = true;        ///< false: piecewise-constant (ablation)
    /// SoA pencil kernels on simd::pack (paper §4.3) vs the width-1
    /// instantiation of the same portable kernel source (src/kernel). Both
    /// produce results equal to rounding; the scalar path is kept selectable
    /// for A/B benchmarking and equivalence tests.
    bool use_simd = true;
    /// Explicit SIMD pack width (2/4/8); 0 defers to use_simd's default.
    int simd_width = 0;
    /// Transverse-lane tile of the pencil kernels (cache blocking; any value
    /// is bit-identical). 0 = untiled; clamped to a multiple of the width.
    int lane_tile = 0;
    /// Resolve width/tile from the autotune cache (kernel/autotune.hpp) under
    /// `machine`, sweeping candidate geometries on a synthetic leaf at first
    /// use if the cache has no entry yet.
    bool autotune = false;
    std::string machine = "host";
    /// Per-leaf future pipeline (ghost fills, flux sweeps, refluxes and
    /// updates chained as continuations, RK stages overlapped) vs the
    /// barriered fill-then-stage schedule. Identical results by
    /// construction — the DAG encodes exactly the data dependencies the
    /// barriers over-approximate.
    bool futurized = true;
    double fixed_dt = 0.0;      ///< >0: skip the CFL computation
    dvec3 omega{0, 0, 0};       ///< rotating-frame angular velocity
    gravity_lookup gravity;     ///< optional gravitational coupling
    /// Invoked before each RK stage (after the previous stage's update, with
    /// current fields). The coupled driver re-solves gravity here so the
    /// source terms see exactly the mass distribution the FMM solved — the
    /// requirement for machine-precision momentum conservation.
    std::function<void()> before_stage;
    rt::thread_pool* pool = nullptr;
    /// Offload flux sweeps through the GPU aggregation executor when set
    /// (the same launch point the FMM solver uses — arXiv:2210.06439's
    /// "one launch point" lesson). Null keeps the pure-CPU schedule. The
    /// executor may reject a submission (saturated device, injected fault);
    /// the sweep then runs inline on the CPU as before.
    gpu::aggregator* aggregator = nullptr;
};

/// Advance the whole tree by one SSP-RK2 step; returns the dt taken.
/// Leaves must hold field data; ghost zones are filled internally.
/// Discarding the dt loses the only record of how far time advanced.
[[nodiscard]] double step(amr::tree& t, const step_options& opt);

/// Global CFL timestep for the current state (used by step / diagnostics).
[[nodiscard]] double cfl_timestep(amr::tree& t, const step_options& opt);

/// Conserved-quantity ledger over all leaves.
struct totals {
    double mass = 0;
    dvec3 momentum{0, 0, 0};
    dvec3 angular_momentum{0, 0, 0}; ///< orbital (r x s) + spin (l)
    double egas = 0;                 ///< gas total energy
    double tau = 0;
    double passive[amr::n_passive] = {0, 0, 0, 0, 0};
};
[[nodiscard]] totals compute_totals(const amr::tree& t);

} // namespace octo::hydro

#pragma once
// Counting latch compatible with the work-helping scheduler: waiting from a
// pool worker executes pending tasks instead of blocking the OS thread.

#include <atomic>

#include "runtime/future.hpp"
#include "sanitize/hooks.hpp"

namespace octo::rt {

class latch {
  public:
    explicit latch(std::ptrdiff_t count) : count_(count) {
        OCTO_ASSERT(count >= 0);
        if (count == 0) done_.set_value();
    }

#ifdef OCTO_RACE_DETECT
    ~latch() { sanitize::sync_retire(this); }
#endif

    void count_down(std::ptrdiff_t n = 1) {
        // Every contributor releases its clock into the latch; the final
        // decrementer joins them all before firing the done promise, which
        // is what lets waiters see *all* contributors' writes.
        sanitize::hb_before(this);
        const auto prev = count_.fetch_sub(n, std::memory_order_acq_rel);
        OCTO_ASSERT(prev >= n);
        if (prev == n) {
            sanitize::hb_after(this);
            done_.set_value();
        }
    }

    [[nodiscard]] bool try_wait() const {
        if (count_.load(std::memory_order_acquire) != 0) return false;
        sanitize::hb_after(this);
        return true;
    }

    void wait() { done_future().wait(); }

    /// A future that becomes ready when the count reaches zero.
    [[nodiscard]] future<void> done_future() {
        if (!fut_.valid()) fut_ = done_.get_future();
        return future<void>(fut_.state());
    }

  private:
    std::atomic<std::ptrdiff_t> count_;
    promise<void> done_;
    future<void> fut_;
};

} // namespace octo::rt

#include "runtime/apex.hpp"

#include <algorithm>

namespace octo::rt {

apex_registry& apex_registry::instance() {
    static apex_registry r;
    return r;
}

void apex_registry::increment(const std::string& counter, std::uint64_t by) {
    std::lock_guard lock(mutex_);
    counters_[counter] += by;
}

void apex_registry::set(const std::string& counter, std::uint64_t value) {
    std::lock_guard lock(mutex_);
    counters_[counter] = value;
}

std::uint64_t apex_registry::counter(const std::string& name) const {
    std::lock_guard lock(mutex_);
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

void apex_registry::record_time(const std::string& timer, double seconds) {
    std::lock_guard lock(mutex_);
    auto& t = timers_[timer];
    t.count += 1;
    t.total_seconds += seconds;
}

timer_stats apex_registry::timer(const std::string& name) const {
    std::lock_guard lock(mutex_);
    auto it = timers_.find(name);
    return it == timers_.end() ? timer_stats{} : it->second;
}

std::vector<std::pair<std::string, timer_stats>> apex_registry::timer_report() const {
    std::lock_guard lock(mutex_);
    std::vector<std::pair<std::string, timer_stats>> out(timers_.begin(),
                                                         timers_.end());
    std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
        return a.second.total_seconds > b.second.total_seconds;
    });
    return out;
}

std::vector<std::pair<std::string, std::uint64_t>> apex_registry::counter_report()
    const {
    std::lock_guard lock(mutex_);
    return {counters_.begin(), counters_.end()};
}

void apex_registry::reset() {
    std::lock_guard lock(mutex_);
    counters_.clear();
    timers_.clear();
}

} // namespace octo::rt

#pragma once
// APEX substitute (paper §4.1): "APEX, an in-situ profiling and adaptive
// tuning framework ... HPX provides a performance counter and adaptive
// tuning framework that allows users to access performance data, such as
// core utilization, task overheads, and network throughput; these
// diagnostic tools were instrumental in scaling Octo-Tiger to the full
// machine."
//
// This provides the two pieces Octo-Tiger actually consumes:
//   * named event counters (increment anywhere, read anywhere),
//   * scoped timers aggregated by name (count + total wall seconds).
// Lock-free on the hot path is not needed here — instrumentation points are
// at task/phase granularity.

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "support/timer.hpp"

namespace octo::rt {

struct timer_stats {
    std::uint64_t count = 0;
    double total_seconds = 0;
};

class apex_registry {
  public:
    static apex_registry& instance();

    void increment(const std::string& counter, std::uint64_t by = 1);
    /// Gauge semantics: overwrite the counter with the latest sample (used
    /// for values like SIMD width or overlap percentages that are not sums).
    void set(const std::string& counter, std::uint64_t value);
    std::uint64_t counter(const std::string& name) const;

    void record_time(const std::string& timer, double seconds);
    timer_stats timer(const std::string& name) const;

    /// All timers, sorted by total time descending (the profile report).
    std::vector<std::pair<std::string, timer_stats>> timer_report() const;
    /// All counters.
    std::vector<std::pair<std::string, std::uint64_t>> counter_report() const;

    void reset();

  private:
    mutable std::mutex mutex_;
    std::map<std::string, std::uint64_t> counters_;
    std::map<std::string, timer_stats> timers_;
};

/// RAII scoped timer: accumulates its lifetime into the named APEX timer.
class apex_timer {
  public:
    explicit apex_timer(std::string name) : name_(std::move(name)) {}
    ~apex_timer() {
        apex_registry::instance().record_time(name_, watch_.seconds());
    }
    apex_timer(const apex_timer&) = delete;
    apex_timer& operator=(const apex_timer&) = delete;

  private:
    std::string name_;
    stopwatch watch_;
};

inline void apex_count(const std::string& counter, std::uint64_t by = 1) {
    apex_registry::instance().increment(counter, by);
}

inline void apex_gauge(const std::string& counter, std::uint64_t value) {
    apex_registry::instance().set(counter, value);
}

} // namespace octo::rt

#pragma once
// Futures with continuations — the core of the HPX-substitute runtime.
//
// The paper (§4.1, §5.1) builds everything on "Futurization": dataflow
// execution trees of futures whose continuations are scheduled only when
// their dependencies are satisfied. This header provides the subset
// Octo-Tiger uses:
//   * promise<T> / future<T> with exceptions propagated through the state,
//   * future::then(f) — attach a continuation, returning a new future,
//   * async(pool, f) — spawn a task returning a future,
//   * make_ready_future(v),
//   * when_all(...) — join heterogeneous or homogeneous future sets.
//
// Blocking semantics: future::get() on a pool worker thread *helps* — it
// executes other pending tasks while waiting. This emulates HPX's
// suspend-and-reschedule of user-level threads and is what allows millions
// of fine-grained tasks without deadlocking a small OS-thread pool.

#include <atomic>
#include <condition_variable>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

#include "runtime/thread_pool.hpp"
#include "sanitize/hooks.hpp"
#include "sanitize/tsan.hpp"
#include "support/assert.hpp"

namespace octo::rt {

template <class T>
class future;
template <class T>
class promise;

namespace detail {

/// Unit type standing in for void results.
struct unit {};

template <class T>
struct state_value {
    using type = T;
};
template <>
struct state_value<void> {
    using type = unit;
};

template <class T>
class shared_state {
  public:
    using value_type = typename state_value<T>::type;

#ifdef OCTO_RACE_DETECT
    ~shared_state() { sanitize::sync_retire(this); }
#endif

    bool is_ready() const {
        std::lock_guard lock(mutex_);
        return ready_;
    }

    void set_value(value_type v) {
        std::vector<std::function<void()>> conts;
        {
            std::lock_guard lock(mutex_);
            OCTO_ASSERT_MSG(!ready_, "promise satisfied twice");
            value_.emplace(std::move(v));
            // The producer's writes happen-before every consumer that
            // observes ready_ (get/wait/continuations).
            sanitize::hb_before(this);
            OCTO_TSAN_HB_BEFORE(this);
            ready_ = true;
            conts.swap(continuations_);
        }
        cv_.notify_all();
        for (auto& c : conts) c();
    }

    void set_exception(std::exception_ptr e) {
        std::vector<std::function<void()>> conts;
        {
            std::lock_guard lock(mutex_);
            OCTO_ASSERT_MSG(!ready_, "promise satisfied twice");
            exception_ = e;
            sanitize::hb_before(this);
            OCTO_TSAN_HB_BEFORE(this);
            ready_ = true;
            conts.swap(continuations_);
        }
        cv_.notify_all();
        for (auto& c : conts) c();
    }

    /// Wait until ready. Pool workers help-execute tasks while waiting.
    void wait() {
        thread_pool* pool = thread_pool::current();
        if (pool != nullptr) {
            while (!is_ready()) {
                if (!pool->run_pending_task()) std::this_thread::yield();
            }
            sanitize::hb_after(this);
            OCTO_TSAN_HB_AFTER(this);
            return;
        }
        std::unique_lock lock(mutex_);
        cv_.wait(lock, [this] { return ready_; });
        sanitize::hb_after(this);
        OCTO_TSAN_HB_AFTER(this);
    }

    value_type get() {
        wait();
        std::lock_guard lock(mutex_);
        if (exception_) std::rethrow_exception(exception_);
        OCTO_ASSERT(value_.has_value());
        // Moving out matches std::future one-shot semantics.
        value_type out = std::move(*value_);
        value_.reset();
        consumed_ = true;
        return out;
    }

    /// Attach a callback that runs exactly once when the state is ready.
    /// Runs immediately (in the calling thread) if already ready.
    void on_ready(std::function<void()> cb) {
        {
            std::lock_guard lock(mutex_);
            if (!ready_) {
                continuations_.push_back(std::move(cb));
                return;
            }
            // Already ready: the callback runs on *this* thread, which must
            // inherit the producer's clock before it schedules consumers.
            sanitize::hb_after(this);
            OCTO_TSAN_HB_AFTER(this);
        }
        cb();
    }

    bool has_exception() const {
        std::lock_guard lock(mutex_);
        return exception_ != nullptr;
    }

  private:
    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::optional<value_type> value_;
    std::exception_ptr exception_;
    std::vector<std::function<void()>> continuations_;
    bool ready_ = false;
    bool consumed_ = false;
};

template <class F, class T>
using then_result_t =
    std::invoke_result_t<F, future<T>>; // continuations take the (ready) future

template <class R>
struct is_future : std::false_type {};
template <class R>
struct is_future<future<R>> : std::true_type {};

} // namespace detail

/// One-shot asynchronous value. Movable, shareable via share-by-copy of the
/// underlying state is intentionally NOT provided (HPX shared_future would
/// be the analogue); Octo-Tiger's dataflow is single-consumer.
///
/// [[nodiscard]]: a dropped future is a dropped dependency edge — the work
/// still runs, but nothing ever waits for it or observes its exception.
/// Intentional fire-and-forget must say so via detach().
template <class T>
class [[nodiscard]] future {
  public:
    using state_type = detail::shared_state<T>;

    future() = default;
    explicit future(std::shared_ptr<state_type> s) : state_(std::move(s)) {}

    bool valid() const { return state_ != nullptr; }
    bool is_ready() const { return state_ && state_->is_ready(); }

    void wait() const {
        OCTO_ASSERT(valid());
        state_->wait();
    }

    /// Retrieve the value (moves it out); rethrows stored exceptions.
    T get() {
        OCTO_ASSERT(valid());
        auto s = std::move(state_);
        if constexpr (std::is_void_v<T>) {
            s->get();
        } else {
            return s->get();
        }
    }

    /// Attach a continuation `f(future<T>)`; returns a future for its result.
    /// The continuation is posted to `pool` when this future becomes ready.
    template <class F>
    auto then(thread_pool& pool, F f) -> future<detail::then_result_t<F, T>>;

    /// then() on the global pool.
    template <class F>
    auto then(F f) {
        return then(thread_pool::global(), std::move(f));
    }

    std::shared_ptr<state_type> state() const { return state_; }

  private:
    std::shared_ptr<state_type> state_;
};

template <class T>
class promise {
  public:
    promise() : state_(std::make_shared<typename future<T>::state_type>()) {}

    future<T> get_future() {
        OCTO_ASSERT_MSG(!future_taken_, "get_future() called twice");
        future_taken_ = true;
        return future<T>(state_);
    }

    // Each setter pins the state with a local strong reference for the whole
    // call: the instant ready_ flips, a waiter may wake, observe completion
    // and destroy this promise (and with it state_) — e.g. a latch on the
    // waiter's stack — while the setter is still notifying the condition
    // variable inside the state.
    template <class U = T>
    std::enable_if_t<!std::is_void_v<U>> set_value(U v) {
        auto s = state_;
        s->set_value(std::move(v));
    }
    template <class U = T>
    std::enable_if_t<std::is_void_v<U>> set_value() {
        auto s = state_;
        s->set_value(detail::unit{});
    }

    void set_exception(std::exception_ptr e) {
        auto s = state_;
        s->set_exception(e);
    }

    std::shared_ptr<typename future<T>::state_type> state() const { return state_; }

  private:
    std::shared_ptr<typename future<T>::state_type> state_;
    bool future_taken_ = false;
};

/// Explicitly drop a future: the associated task keeps running (its promise
/// and captures stay alive through the scheduler), but nothing will wait for
/// it. This is the only sanctioned way to ignore a future-returning call —
/// a bare discard trips [[nodiscard]] and the dropped-future lint.
template <class T>
void detach(future<T>&& f) {
    future<T> dropped(std::move(f));
    (void)dropped;
}

template <class T>
future<std::decay_t<T>> make_ready_future(T&& v) {
    promise<std::decay_t<T>> p;
    auto f = p.get_future();
    p.set_value(std::forward<T>(v));
    return f;
}

inline future<void> make_ready_future() {
    promise<void> p;
    auto f = p.get_future();
    p.set_value();
    return f;
}

namespace detail {

/// Invoke `f` with the (ready) future `fut`, fulfilling promise `p` with the
/// result; unwraps future<future<R>> one level as HPX does.
template <class F, class T, class R>
void run_continuation(F& f, future<T>& fut, promise<R>& p) {
    try {
        if constexpr (std::is_void_v<R>) {
            f(std::move(fut));
            p.set_value();
        } else {
            p.set_value(f(std::move(fut)));
        }
    } catch (...) {
        p.set_exception(std::current_exception());
    }
}

} // namespace detail

template <class T>
template <class F>
auto future<T>::then(thread_pool& pool, F f) -> future<detail::then_result_t<F, T>> {
    using R = detail::then_result_t<F, T>;
    OCTO_ASSERT(valid());
    auto state = std::move(state_);
    auto p = std::make_shared<promise<R>>();
    auto result = p->get_future();
    state->on_ready([&pool, state, p, f = std::move(f)]() mutable {
        pool.post([state, p, f = std::move(f)]() mutable {
            future<T> ready(state);
            detail::run_continuation(f, ready, *p);
        });
    });
    return result;
}

/// Spawn `f()` as a task on `pool`; returns a future for its result.
template <class F>
auto async(thread_pool& pool, F f) -> future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto p = std::make_shared<promise<R>>();
    auto result = p->get_future();
    pool.post([p, f = std::move(f)]() mutable {
        try {
            if constexpr (std::is_void_v<R>) {
                f();
                p->set_value();
            } else {
                p->set_value(f());
            }
        } catch (...) {
            p->set_exception(std::current_exception());
        }
    });
    return result;
}

/// async() on the global pool.
template <class F>
auto async(F f) {
    return async(thread_pool::global(), std::move(f));
}

/// Join a homogeneous set of futures: ready when all inputs are ready.
/// Exceptions: the first stored exception is propagated.
template <class T>
[[nodiscard]] future<std::vector<future<T>>>
when_all(std::vector<future<T>> futures) {
    struct join_state {
        std::atomic<std::size_t> remaining;
        std::vector<future<T>> futures;
        promise<std::vector<future<T>>> p;
#ifdef OCTO_RACE_DETECT
        ~join_state() { sanitize::sync_retire(this); }
#endif
    };
    auto js = std::make_shared<join_state>();
    // Pre-publication init: on_ready registration below is the publish.
    js->remaining.store(futures.size() + 1, std::memory_order_release);
    js->futures = std::move(futures);
    auto result = js->p.get_future();

    auto arm = [js] {
        // Each contributor releases its clock into the join counter; the
        // final decrementer acquires them all before satisfying the promise.
        sanitize::hb_before(js.get());
        if (js->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            sanitize::hb_after(js.get());
            js->p.set_value(std::move(js->futures));
        }
    };
    for (auto& f : js->futures) {
        OCTO_ASSERT(f.valid());
        f.state()->on_ready(arm);
    }
    arm(); // drop the sentinel count
    return result;
}

/// Join heterogeneous futures; result carries the (ready) input futures.
template <class... Ts>
[[nodiscard]] future<std::tuple<future<Ts>...>> when_all(future<Ts>... fs) {
    struct join_state {
        std::atomic<std::size_t> remaining;
        std::tuple<future<Ts>...> futures;
        promise<std::tuple<future<Ts>...>> p;
        explicit join_state(future<Ts>... f)
            : remaining(sizeof...(Ts) + 1), futures(std::move(f)...) {}
#ifdef OCTO_RACE_DETECT
        ~join_state() { sanitize::sync_retire(this); }
#endif
    };
    auto js = std::make_shared<join_state>(std::move(fs)...);
    auto result = js->p.get_future();
    auto arm = [js] {
        sanitize::hb_before(js.get());
        if (js->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            sanitize::hb_after(js.get());
            js->p.set_value(std::move(js->futures));
        }
    };
    std::apply([&](auto&... f) { (f.state()->on_ready(arm), ...); }, js->futures);
    arm();
    return result;
}

} // namespace octo::rt

#include "runtime/thread_pool.hpp"

#include <atomic>
#include <chrono>
#include <cstdint>

#include "sanitize/hooks.hpp"
#include "support/assert.hpp"

namespace octo::rt {
namespace {

// Thread-local identity of a pool worker.
thread_local thread_pool* tls_pool = nullptr;
thread_local unsigned tls_index = 0;

#ifdef OCTO_RACE_DETECT
/// Wrap a task with a per-post sync token so the detector sees the edge
/// "everything the poster did happens-before the task body" — the edge the
/// queue mutex provides for real. Odd token values never alias object
/// addresses (all tracked objects are at least 2-byte aligned).
task wrap_task_for_detector(task t) {
    static std::atomic<std::uintptr_t> counter{1};
    const void* token = reinterpret_cast<const void*>(
        counter.fetch_add(2, std::memory_order_relaxed));
    sanitize::hb_before(token);
    return [inner = std::move(t), token]() mutable {
        sanitize::hb_after(token);
        inner();
        sanitize::sync_retire(token);
    };
}
#endif

} // namespace

thread_pool::thread_pool(unsigned nthreads) {
    OCTO_ASSERT(nthreads >= 1);
    queues_.reserve(nthreads);
    for (unsigned i = 0; i < nthreads; ++i) {
        queues_.push_back(std::make_unique<worker_queue>());
    }
    workers_.reserve(nthreads);
    for (unsigned i = 0; i < nthreads; ++i) {
        workers_.emplace_back([this, i] { worker_loop(i); });
    }
}

thread_pool::~thread_pool() {
    {
        std::lock_guard lock(sleep_mutex_);
        stop_.store(true, std::memory_order_release);
    }
    sleep_cv_.notify_all();
    for (auto& w : workers_) w.join();
}

bool thread_pool::post(task t) {
    OCTO_ASSERT_MSG(!stop_.load(std::memory_order_acquire), "post() after shutdown");
    if (closed_.load(std::memory_order_acquire)) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
#ifdef OCTO_RACE_DETECT
    t = wrap_task_for_detector(std::move(t));
#endif
    // acq_rel: the increment must be ordered against wait_idle()'s acquire
    // load — a relaxed increment could let a concurrent wait_idle() observe
    // the pre-post zero after the task is already enqueued.
    inflight_.fetch_add(1, std::memory_order_acq_rel);
    posted_.fetch_add(1, std::memory_order_relaxed);

    unsigned q;
    if (tls_pool == this) {
        q = tls_index; // local LIFO push for cache locality
    } else {
        q = next_victim_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
    }
    {
        std::lock_guard lock(queues_[q]->mutex);
        queues_[q]->tasks.push_back(std::move(t));
    }
    sleep_cv_.notify_one();
    return true;
}

void thread_pool::close() { closed_.store(true, std::memory_order_release); }

bool thread_pool::try_pop_or_steal(unsigned index, task& out) {
    // Local queue first (LIFO end — depth-first execution of freshly spawned
    // work keeps the working set hot).
    {
        auto& q = *queues_[index];
        std::lock_guard lock(q.mutex);
        if (!q.tasks.empty()) {
            out = std::move(q.tasks.back());
            q.tasks.pop_back();
            executed_.fetch_add(1, std::memory_order_relaxed);
            return true;
        }
    }
    // Steal from the FIFO end of other queues (oldest task: likely the root
    // of the largest remaining subtree).
    const unsigned n = static_cast<unsigned>(queues_.size());
    for (unsigned k = 1; k < n; ++k) {
        auto& q = *queues_[(index + k) % n];
        std::lock_guard lock(q.mutex);
        if (!q.tasks.empty()) {
            out = std::move(q.tasks.front());
            q.tasks.pop_front();
            executed_.fetch_add(1, std::memory_order_relaxed);
            stolen_.fetch_add(1, std::memory_order_relaxed);
            return true;
        }
    }
    return false;
}

thread_pool::statistics thread_pool::stats() const {
    return {executed_.load(std::memory_order_relaxed),
            stolen_.load(std::memory_order_relaxed),
            posted_.load(std::memory_order_relaxed),
            rejected_.load(std::memory_order_relaxed)};
}

bool thread_pool::run_pending_task() {
    const unsigned index = (tls_pool == this) ? tls_index : 0;
    task t;
    if (!try_pop_or_steal(index, t)) return false;
    t();
    if (inflight_.fetch_sub(1, std::memory_order_acq_rel) == 1) idle_cv_.notify_all();
    return true;
}

void thread_pool::worker_loop(unsigned index) {
    tls_pool = this;
    tls_index = index;
    for (;;) {
        task t;
        if (try_pop_or_steal(index, t)) {
            t();
            if (inflight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
                idle_cv_.notify_all();
            }
            continue;
        }
        std::unique_lock lock(sleep_mutex_);
        if (stop_.load(std::memory_order_acquire)) return;
        // Re-check for work that raced with us before sleeping.
        lock.unlock();
        if (try_pop_or_steal(index, t)) {
            t();
            if (inflight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
                idle_cv_.notify_all();
            }
            continue;
        }
        lock.lock();
        if (stop_.load(std::memory_order_acquire)) return;
        sleep_cv_.wait_for(lock, std::chrono::milliseconds(1));
    }
}

thread_pool* thread_pool::current() noexcept { return tls_pool; }
unsigned thread_pool::current_worker_index() noexcept { return tls_index; }

thread_pool& thread_pool::global() {
    static thread_pool pool{std::max(2u, std::thread::hardware_concurrency())};
    return pool;
}

void thread_pool::wait_idle() {
    OCTO_ASSERT_MSG(tls_pool != this, "wait_idle() from a worker would deadlock");
    std::unique_lock lock(sleep_mutex_);
    // Timed wait avoids a missed-wakeup race: workers notify idle_cv_ without
    // holding sleep_mutex_ for performance, so we re-check periodically.
    while (inflight_.load(std::memory_order_acquire) != 0) {
        idle_cv_.wait_for(lock, std::chrono::milliseconds(1));
    }
}

} // namespace octo::rt

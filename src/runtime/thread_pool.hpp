#pragma once
// Work-stealing task scheduler — the substrate of the HPX-substitute runtime
// (DESIGN.md). Mirrors the properties the paper relies on (§4.1):
//   * a work-stealing lightweight task scheduler for fine-grained
//     parallelization and automatic load balancing,
//   * wait-free task submission on the fast path,
//   * "work-helping" blocking: a worker that waits on a future executes
//     other pending tasks instead of blocking the OS thread (this emulates
//     HPX's user-level-thread suspension, which is what lets Octo-Tiger keep
//     thousands of tasks in flight per node).

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace octo::rt {

using task = std::function<void()>;

class thread_pool {
  public:
    /// Create a pool with `nthreads` OS worker threads (>= 1).
    explicit thread_pool(unsigned nthreads);
    ~thread_pool();

    thread_pool(const thread_pool&) = delete;
    thread_pool& operator=(const thread_pool&) = delete;

    /// Enqueue a task. Called from worker threads it pushes to the local
    /// deque (LIFO for locality); from external threads it pushes to the
    /// submitter's round-robin victim queue. Returns false (and drops the
    /// task) if the pool has been close()d — a dead locality's scheduler
    /// accepts nothing, it does not crash the submitter.
    bool post(task t);

    /// Stop accepting work (node-death model, ISSUE 10): subsequent post()
    /// calls drop their task and return false. Tasks already queued still
    /// run — the node died mid-step, work it had accepted may complete, but
    /// nothing new lands on it. Irreversible for the pool's lifetime.
    void close();
    bool accepting() const {
        return !closed_.load(std::memory_order_acquire);
    }

    unsigned size() const { return static_cast<unsigned>(workers_.size()); }

    /// Run one pending task if any is available to this thread; returns
    /// whether a task was executed. Used by future::get() to help instead of
    /// blocking, and by parcelport polling loops.
    bool run_pending_task();

    /// Pool the calling thread is a worker of, or nullptr.
    static thread_pool* current() noexcept;
    /// Index of the calling worker within its pool (undefined if none).
    static unsigned current_worker_index() noexcept;

    /// Process-wide default pool (hardware_concurrency workers).
    static thread_pool& global();

    /// Scheduler statistics (HPX performance-counter analogue, paper §4.1).
    struct statistics {
        std::uint64_t tasks_executed = 0;
        std::uint64_t tasks_stolen = 0; ///< executed after a steal
        std::uint64_t tasks_posted = 0;
        std::uint64_t tasks_rejected = 0; ///< dropped by post() after close()
    };
    statistics stats() const;

    /// Block until all tasks posted so far (and tasks they spawned) have
    /// completed. Only callable from a non-worker thread.
    void wait_idle();

  private:
    struct worker_queue {
        std::mutex mutex;
        std::deque<task> tasks;
    };

    void worker_loop(unsigned index);
    bool try_pop_or_steal(unsigned index, task& out);

    std::vector<std::unique_ptr<worker_queue>> queues_;
    std::vector<std::thread> workers_;

    std::mutex sleep_mutex_;
    std::condition_variable sleep_cv_;
    std::condition_variable idle_cv_;

    std::atomic<unsigned> next_victim_{0};
    std::atomic<std::size_t> inflight_{0}; // queued + executing tasks
    std::atomic<bool> stop_{false};
    std::atomic<bool> closed_{false};

    std::atomic<std::uint64_t> executed_{0};
    std::atomic<std::uint64_t> stolen_{0};
    std::atomic<std::uint64_t> posted_{0};
    std::atomic<std::uint64_t> rejected_{0};
};

} // namespace octo::rt

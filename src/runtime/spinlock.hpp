#pragma once
// Tiny spinlock for very short critical sections (shared-state transitions).
// HPX likewise uses spinlocks internally so that blocking never involves the
// OS scheduler on the fast path.

#include <atomic>

#include "sanitize/hooks.hpp"

namespace octo::rt {

class spinlock {
  public:
#ifdef OCTO_RACE_DETECT
    ~spinlock() { sanitize::sync_retire(this); }
#endif

    void lock() noexcept {
        while (flag_.test_and_set(std::memory_order_acquire)) {
            while (flag_.test(std::memory_order_relaxed)) {
                // spin; pause would go here on x86
            }
        }
        // Records the lock-order edge (held -> this) and joins the previous
        // holder's clock.
        sanitize::lock_acquired(this);
    }
    bool try_lock() noexcept {
        if (flag_.test_and_set(std::memory_order_acquire)) return false;
        sanitize::lock_acquired(this);
        return true;
    }
    void unlock() noexcept {
        sanitize::lock_released(this);
        flag_.clear(std::memory_order_release);
    }

  private:
    std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
};

} // namespace octo::rt

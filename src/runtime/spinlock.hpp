#pragma once
// Tiny spinlock for very short critical sections (shared-state transitions).
// HPX likewise uses spinlocks internally so that blocking never involves the
// OS scheduler on the fast path.

#include <atomic>

namespace octo::rt {

class spinlock {
  public:
    void lock() noexcept {
        while (flag_.test_and_set(std::memory_order_acquire)) {
            while (flag_.test(std::memory_order_relaxed)) {
                // spin; pause would go here on x86
            }
        }
    }
    bool try_lock() noexcept { return !flag_.test_and_set(std::memory_order_acquire); }
    void unlock() noexcept { flag_.clear(std::memory_order_release); }

  private:
    std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
};

} // namespace octo::rt

#pragma once
// HPX-style channel (paper §5.2): "The asynchronous send/receive abstraction
// in HPX has been extended with the concept of a channel that the receiving
// end may fetch futures from (for N timesteps ahead if desired) and the
// sending end may push data into as it is generated."
//
// Octo-Tiger uses channels for halo exchange between neighbouring octree
// nodes; our AMR layer does the same. A channel is an ordered, unbounded
// stream: the i-th recv() receives the i-th send().

#include <deque>
#include <mutex>
#include <utility>

#include "runtime/future.hpp"
#include "sanitize/hooks.hpp"

namespace octo::rt {

template <class T>
class channel {
  public:
#ifdef OCTO_RACE_DETECT
    ~channel() { sanitize::sync_retire(this); }
#endif

    /// Push a value into the channel. If a receiver is already waiting for
    /// this slot its future becomes ready immediately (and its continuations
    /// are scheduled); otherwise the value is buffered.
    void set(T value) {
        promise<T> waiting;
        {
            std::lock_guard lock(mutex_);
            // Sender's writes happen-before the matching recv() — on the
            // buffered path the value changes threads through buffered_, so
            // the channel itself is the sync object (the pending path gets a
            // second, tighter edge through the promise's shared state).
            sanitize::hb_before(this);
            if (pending_gets_.empty()) {
                buffered_.push_back(std::move(value));
                return;
            }
            // Satisfy the oldest outstanding recv(). set_value runs outside
            // the lock so continuations can call back into the channel.
            waiting = std::move(pending_gets_.front());
            pending_gets_.pop_front();
        }
        waiting.set_value(std::move(value));
    }

    /// HPX-style naming: send/recv are the channel verbs used at call sites.
    void send(T value) { set(std::move(value)); }

    /// Fetch a future for the next value in stream order. May be called
    /// several slots ahead of the sender (N-timesteps-ahead prefetch).
    [[nodiscard]] future<T> get() {
        std::lock_guard lock(mutex_);
        sanitize::hb_after(this);
        if (!buffered_.empty()) {
            auto f = make_ready_future(std::move(buffered_.front()));
            buffered_.pop_front();
            return f;
        }
        pending_gets_.emplace_back();
        return pending_gets_.back().get_future();
    }

    [[nodiscard]] future<T> recv() { return get(); }

    /// Number of buffered (sent but unreceived) values.
    [[nodiscard]] std::size_t buffered() const {
        std::lock_guard lock(mutex_);
        return buffered_.size();
    }

  private:
    mutable std::mutex mutex_;
    std::deque<T> buffered_;
    std::deque<promise<T>> pending_gets_;
};

} // namespace octo::rt

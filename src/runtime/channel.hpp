#pragma once
// HPX-style channel (paper §5.2): "The asynchronous send/receive abstraction
// in HPX has been extended with the concept of a channel that the receiving
// end may fetch futures from (for N timesteps ahead if desired) and the
// sending end may push data into as it is generated."
//
// Octo-Tiger uses channels for halo exchange between neighbouring octree
// nodes; our AMR layer does the same. A channel is an ordered, unbounded
// stream: the i-th get() receives the i-th set().

#include <deque>
#include <mutex>
#include <utility>

#include "runtime/future.hpp"

namespace octo::rt {

template <class T>
class channel {
  public:
    /// Push a value into the channel. If a receiver is already waiting for
    /// this slot its future becomes ready immediately (and its continuations
    /// are scheduled); otherwise the value is buffered.
    void set(T value) {
        promise<T> waiting;
        {
            std::lock_guard lock(mutex_);
            if (pending_gets_.empty()) {
                buffered_.push_back(std::move(value));
                return;
            }
            // Satisfy the oldest outstanding get(). set_value runs outside
            // the lock so continuations can call back into the channel.
            waiting = std::move(pending_gets_.front());
            pending_gets_.pop_front();
        }
        waiting.set_value(std::move(value));
    }

    /// Fetch a future for the next value in stream order. May be called
    /// several slots ahead of the sender (N-timesteps-ahead prefetch).
    future<T> get() {
        std::lock_guard lock(mutex_);
        if (!buffered_.empty()) {
            auto f = make_ready_future(std::move(buffered_.front()));
            buffered_.pop_front();
            return f;
        }
        pending_gets_.emplace_back();
        return pending_gets_.back().get_future();
    }

    /// Number of buffered (sent but unreceived) values.
    std::size_t buffered() const {
        std::lock_guard lock(mutex_);
        return buffered_.size();
    }

  private:
    mutable std::mutex mutex_;
    std::deque<T> buffered_;
    std::deque<promise<T>> pending_gets_;
};

} // namespace octo::rt

#include "scf/scf.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "physics/polytrope.hpp"
#include "support/assert.hpp"

namespace octo::scf {

using namespace octo::amr;

tree make_uniform_tree(double edge, int depth) {
    box_geometry g;
    g.origin = {-edge / 2, -edge / 2, -edge / 2};
    g.dx = edge / INX;
    tree t(g);
    for (int d = 0; d < depth; ++d) {
        for (const auto k : t.leaves_sfc()) t.refine(k);
    }
    for (const auto k : t.leaves_sfc()) t.ensure_fields(k);
    return t;
}

namespace {

/// Visit every leaf cell: f(subgrid&, i, j, k, center).
template <class F>
void for_each_cell(tree& t, F&& f) {
    for (const auto k : t.leaves_sfc()) {
        auto& g = *t.node(k).fields;
        for (int i = 0; i < INX; ++i)
            for (int j = 0; j < INX; ++j)
                for (int kk = 0; kk < INX; ++kk) {
                    f(g, i, j, kk, g.geom.cell_center(i, j, kk));
                }
    }
}

/// Smooth potential sampling: Taylor-evaluate the FMM local expansion of the
/// containing cell (nearest-cell values would quantize away the small
/// boundary-point differences the Hachisu iteration solves for).
class potential_field {
  public:
    potential_field(tree& t, const fmm::solver& s) : t_(&t), s_(&s) {}

    double operator()(const dvec3& r) const { return s_->potential_at(*t_, r); }

  private:
    tree* t_;
    const fmm::solver* s_;
};

} // namespace

binary_model solve_binary(tree& t, const binary_params& p) {
    OCTO_ASSERT(p.x1 < p.x2);
    binary_model model;

    // Initial guess: two spherical polytrope-ish blobs.
    for_each_cell(t, [&](subgrid& g, int i, int j, int k, const dvec3& r) {
        const double d1 = norm(r - dvec3{p.x1, 0, 0});
        const double d2 = norm(r - dvec3{p.x2, 0, 0});
        double rho = p.atmosphere;
        if (d1 < p.r1) rho += p.rho_c1 * (1.0 - d1 / p.r1);
        if (d2 < p.r2) rho += p.rho_c2 * (1.0 - d2 / p.r2);
        g.interior(f_rho, i, j, k) = rho;
    });

    fmm::solver grav({.conserve = fmm::am_mode::none});

    // Boundary points: outer and inner edges of each star along the x-axis.
    const dvec3 out1{p.x1 - p.r1, 0, 0};
    const dvec3 in1{p.x1 + p.r1, 0, 0};
    const dvec3 out2{p.x2 + p.r2, 0, 0};

    double omega2_prev = 0.0;
    const double npow = p.n;

    for (int it = 0; it < p.max_iterations; ++it) {
        grav.solve(t);
        potential_field phi(t, grav);

        // Omega^2 from the primary's two surface points:
        //   Phi(out1) - 1/2 w2 x_out^2 = Phi(in1) - 1/2 w2 x_in^2.
        const double num = 2.0 * (phi(out1) - phi(in1));
        const double den = norm2(dvec3{out1.x, 0, 0}) - norm2(dvec3{in1.x, 0, 0});
        double omega2 = den != 0.0 ? num / den : 0.0;
        omega2 = std::max(omega2, 0.0);

        auto psi = [&](const dvec3& r) {
            return phi(r) - 0.5 * omega2 * (r.x * r.x + r.y * r.y);
        };
        const double C1 = psi(out1);
        const double C2 = psi(out2);

        // Split plane between the stars: midpoint of the inner edges.
        const double xsplit = 0.5 * (in1.x + (p.x2 - p.r2));

        // Support masks: rebuild each star only near its center.
        auto in_star1 = [&](const dvec3& r) {
            return r.x < xsplit &&
                   norm(r - dvec3{p.x1, 0, 0}) < p.support_factor * p.r1;
        };
        auto in_star2 = [&](const dvec3& r) {
            return r.x >= xsplit &&
                   norm(r - dvec3{p.x2, 0, 0}) < p.support_factor * p.r2;
        };

        // Peak enthalpies for the central-density normalization.
        double H1max = 0.0, H2max = 0.0;
        for_each_cell(t, [&](subgrid&, int, int, int, const dvec3& r) {
            if (in_star1(r)) {
                H1max = std::max(H1max, C1 - psi(r));
            } else if (in_star2(r)) {
                H2max = std::max(H2max, C2 - psi(r));
            }
        });
        if (H1max <= 0.0 || H2max <= 0.0) {
            // Degenerate configuration; bail out with what we have.
            break;
        }

        // New density field: rho = rho_c (H / Hmax)^n within the support
        // masks, atmosphere elsewhere; under-relaxed.
        for_each_cell(t, [&](subgrid& g, int i, int j, int k, const dvec3& r) {
            double rho_new = p.atmosphere;
            if (in_star1(r)) {
                const double H = C1 - psi(r);
                if (H > 0.0) rho_new += p.rho_c1 * std::pow(H / H1max, npow);
            } else if (in_star2(r)) {
                const double H = C2 - psi(r);
                if (H > 0.0) rho_new += p.rho_c2 * std::pow(H / H2max, npow);
            }
            double& rho = g.interior(f_rho, i, j, k);
            rho = p.relax * rho_new + (1.0 - p.relax) * rho;
        });

        model.iterations = it + 1;
        model.omega = std::sqrt(omega2);
        if (it > 3 && omega2 > 0.0 &&
            std::abs(omega2 - omega2_prev) <
                p.tolerance * std::max(omega2, 1e-30)) {
            model.converged = true;
            // Record the realized polytropic constants K = Hmax /
            // ((n+1) rho_c^(1/n)).
            model.K1 = H1max / ((p.n + 1.0) * std::pow(p.rho_c1, 1.0 / p.n));
            model.K2 = H2max / ((p.n + 1.0) * std::pow(p.rho_c2, 1.0 / p.n));
            break;
        }
        omega2_prev = omega2;
        model.K1 = H1max / ((p.n + 1.0) * std::pow(p.rho_c1, 1.0 / p.n));
        model.K2 = H2max / ((p.n + 1.0) * std::pow(p.rho_c2, 1.0 / p.n));
    }

    // Masses and centers of mass of the two components.
    const double xsplit = 0.5 * ((p.x1 + p.r1) + (p.x2 - p.r2));
    for_each_cell(t, [&](subgrid& g, int i, int j, int k, const dvec3& r) {
        const double V = g.geom.cell_volume();
        const double m = g.interior(f_rho, i, j, k) * V;
        if (r.x < xsplit) {
            model.mass1 += m;
            model.com1 += m * r;
        } else {
            model.mass2 += m;
            model.com2 += m * r;
        }
    });
    if (model.mass1 > 0) model.com1 /= model.mass1;
    if (model.mass2 > 0) model.com2 /= model.mass2;

    // Fill the remaining evolved fields: rigid rotation about the z-axis
    // through the origin (the SCF frame's rotation center), polytropic
    // pressure -> internal energy, passive scalars by component and density.
    const double gamma = 1.0 + 1.0 / p.n;
    phys::ideal_gas_eos eos(gamma);
    for_each_cell(t, [&](subgrid& g, int i, int j, int k, const dvec3& r) {
        const double rho = g.interior(f_rho, i, j, k);
        const dvec3 v = model.omega * cross(dvec3{0, 0, 1}, r);
        g.interior(f_sx, i, j, k) = rho * v.x;
        g.interior(f_sy, i, j, k) = rho * v.y;
        g.interior(f_sz, i, j, k) = rho * v.z;
        const bool star1 = r.x < xsplit;
        const double K = star1 ? model.K1 : model.K2;
        const double pgas = K * std::pow(rho, gamma);
        const double internal = pgas / (gamma - 1.0);
        g.interior(f_egas, i, j, k) = internal + 0.5 * rho * norm2(v);
        g.interior(f_tau, i, j, k) = eos.tau_from_internal(internal);
        // Spin: rigid rotation has uniform vorticity 2*Omega; the cell-level
        // spin about its own center for solid-body rotation is
        // l = rho * Omega * (dx^2/6) per unit... we initialize from the
        // second moment of a homogeneous cube: I = rho dx^2/6 per volume.
        const double dx2 = g.geom.dx * g.geom.dx;
        g.interior(f_lz, i, j, k) = rho * model.omega * dx2 / 6.0;
        g.interior(f_lx, i, j, k) = 0.0;
        g.interior(f_ly, i, j, k) = 0.0;
        // Passive scalars (paper §4.2): accretor core/envelope, donor
        // core/envelope, common atmosphere.
        double fr[n_passive] = {0, 0, 0, 0, 0};
        if (rho <= 10.0 * p.atmosphere) {
            fr[4] = rho;
        } else if (star1) {
            (rho > 0.5 * p.rho_c1 ? fr[0] : fr[1]) = rho;
        } else {
            (rho > 0.5 * p.rho_c2 ? fr[2] : fr[3]) = rho;
        }
        for (int s = 0; s < n_passive; ++s) {
            g.interior(first_passive + s, i, j, k) = fr[s];
        }
    });

    return model;
}

void init_single_star(tree& t, double mass, double radius, double n,
                      const dvec3& center, const dvec3& velocity,
                      double atmosphere) {
    const phys::polytrope star(mass, radius, n);
    const double gamma = 1.0 + 1.0 / n;
    phys::ideal_gas_eos eos(gamma);
    for_each_cell(t, [&](subgrid& g, int i, int j, int k, const dvec3& r) {
        const double rho = std::max(star.rho(norm(r - center)), atmosphere);
        g.interior(f_rho, i, j, k) = rho;
        g.interior(f_sx, i, j, k) = rho * velocity.x;
        g.interior(f_sy, i, j, k) = rho * velocity.y;
        g.interior(f_sz, i, j, k) = rho * velocity.z;
        const double pgas =
            std::max(star.pressure(norm(r - center)), atmosphere * 1e-3);
        const double internal = pgas / (gamma - 1.0);
        g.interior(f_egas, i, j, k) = internal + 0.5 * rho * norm2(velocity);
        g.interior(f_tau, i, j, k) = eos.tau_from_internal(internal);
        for (int s = 0; s < n_passive; ++s) {
            g.interior(first_passive + s, i, j, k) = 0.0;
        }
        g.interior(f_lx, i, j, k) = 0.0;
        g.interior(f_ly, i, j, k) = 0.0;
        g.interior(f_lz, i, j, k) = 0.0;
        // Core/envelope labels by density.
        g.interior(first_passive + (rho > 0.2 * star.rho_central() ? 0 : 1), i,
                   j, k) = rho;
    });
}

} // namespace octo::scf

#pragma once
// Self-Consistent Field initial models (paper §3, §4.2): "Octo-Tiger uses
// its Self-Consistent Field module [Even & Tohline 2009, Hachisu 1986] to
// produce an initial model for V1309 ... The stars are tidally synchronized,
// and the stars have a common atmosphere."
//
// The Hachisu iteration: with polytropic enthalpy H = (n+1) K rho^(1/n),
// a synchronously rotating equilibrium satisfies
//     H(r) + Phi(r) - 1/2 Omega^2 (x^2 + y^2) = C_i        (inside star i)
// Each cycle computes Phi from the current density with the FMM solver,
// solves for (Omega^2, C_1, C_2) from prescribed boundary points on the
// x-axis, rebuilds the density from the enthalpy, and under-relaxes.

#include <functional>

#include "amr/tree.hpp"
#include "fmm/solver.hpp"
#include "physics/eos.hpp"

namespace octo::scf {

struct binary_params {
    double rho_c1 = 1.0;    ///< central density of the primary (accretor)
    double rho_c2 = 0.5;    ///< central density of the secondary (donor)
    double n = 1.5;         ///< polytropic index of both components
    // Boundary points on the x-axis (positions in domain units). The primary
    // is centered near x1, the secondary near x2; the model is solved for
    // the surfaces passing through the given inner/outer edge points.
    // The stars must span several cells of the SCF grid or the discrete
    // asymmetry of the sampled mass overwhelms the boundary-point potential
    // differences the iteration solves for (r / dx >= 3 or so).
    double x1 = -0.14;      ///< primary center estimate
    double x2 = 0.28;       ///< secondary center estimate
    double r1 = 0.14;       ///< primary radius along the axis
    double r2 = 0.09;       ///< secondary radius along the axis
    int tree_depth = 2;     ///< uniform octree depth for the SCF grid
    int max_iterations = 40;
    double relax = 0.5;     ///< under-relaxation factor
    double tolerance = 1e-4; ///< relative change in Omega for convergence
    double atmosphere = 1e-10; ///< floor density outside the stars
    /// Stars are rebuilt only within support_factor * r_i of their centers:
    /// beyond corotation the effective potential rises again and H > 0
    /// reappears, so an unmasked rebuild would fill the whole domain (the
    /// classic Hachisu-iteration failure mode).
    double support_factor = 1.5;
};

struct binary_model {
    double omega = 0.0;  ///< orbital angular velocity of the synchronized frame
    double mass1 = 0.0;
    double mass2 = 0.0;
    dvec3 com1{0, 0, 0}; ///< center of mass of the primary
    dvec3 com2{0, 0, 0};
    double K1 = 0.0;     ///< polytropic constants realized by the model
    double K2 = 0.0;
    int iterations = 0;
    bool converged = false;
};

/// Solve the SCF equations on `t` (a uniform tree of the requested depth is
/// built by the caller; leaves must have field storage). On return the tree
/// holds rho, momenta (rigid rotation at `omega` about the z-axis through
/// the system center of mass), egas/tau from the polytropic pressure, and
/// the five passive scalars labeled (accretor core/envelope, donor
/// core/envelope, atmosphere).
binary_model solve_binary(amr::tree& t, const binary_params& p);

/// Single spherical star (used by the Tasker et al. verification tests 3&4):
/// a Lane–Emden polytrope of the given mass/radius sampled onto the tree,
/// with pressure-consistent internal energy and optional uniform velocity.
void init_single_star(amr::tree& t, double mass, double radius, double n,
                      const dvec3& center, const dvec3& velocity,
                      double atmosphere = 1e-10);

/// Build a uniform tree of the given depth over a cube centered at the
/// origin with the given edge length, with field storage on all leaves.
amr::tree make_uniform_tree(double edge, int depth);

} // namespace octo::scf

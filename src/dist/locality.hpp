#pragma once
// The distributed-runtime substrate (HPX substitution, DESIGN.md):
//   * localities — logical "compute nodes" hosted in one process, each with
//     its own task pool,
//   * actions — registered functions triggered by parcels ("active messages
//     are used to transfer data and trigger a function on a remote node",
//     paper §5.2),
//   * an AGAS-style registry mapping global ids to owner localities, with
//     migration ("Even when a grid cell is migrated from one node to another
//     during operation, the runtime manages the updated destination address
//     transparently"),
//   * gid-addressed channels for halo exchange with future-based receives.
//
// Parcels are transported by a pluggable parcelport (src/net): the runtime
// hands the port a serialized parcel; the port delivers it (applying its
// latency/overhead model) by calling runtime::deliver on the destination.
//
// The transport is treated as LOSSY (ISSUE 5): real fabrics drop, duplicate,
// reorder and corrupt completions. The runtime therefore wraps every parcel
// in a reliability header (per-destination sequence number + CRC32 payload
// checksum) and runs an ack / timeout / exponential-backoff retransmit
// protocol with receiver-side dedup and reorder buffering, so actions run
// exactly once, in apply() order per destination, over any parcelport — even
// one decorated with the fault injector (net::faulty_parcelport). A bounded
// retry budget turns a dead link into a reported error instead of a hang.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "dist/serialize.hpp"
#include "runtime/channel.hpp"
#include "runtime/future.hpp"
#include "runtime/thread_pool.hpp"

namespace octo::dist {

using gid = std::uint64_t;
using action_id = std::uint32_t;

/// data parcels carry actions; ack parcels carry cumulative receipt
/// confirmations back to the sender-side retransmit buffer.
enum class parcel_kind : std::uint8_t { data = 0, ack = 1 };

struct parcel {
    int dest = 0;
    action_id action = 0;
    std::vector<std::byte> payload;

    // ---- reliability header (filled by the runtime) ------------------------
    parcel_kind kind = parcel_kind::data;
    /// data: per-destination sequence number. ack: cumulative — "every data
    /// parcel for `dest` with seq < this value has been received".
    std::uint64_t seq = 0;
    /// CRC32 over (dest, action, kind, seq, payload). Excludes `attempt`, so
    /// retransmits carry the identical checksum.
    std::uint32_t checksum = 0;
    /// 0 on first transmission; incremented per retransmit (ports count
    /// first transmissions and retransmits separately).
    std::uint32_t attempt = 0;
};

/// Checksum a parcel's covered fields. Shared by the runtime (compute +
/// verify) and tests (forging corrupt fixtures).
std::uint32_t parcel_crc(const parcel& p);

struct port_stats {
    // Transport-level accounting (filled by the parcelport).
    std::uint64_t parcels_sent = 0; ///< first transmissions of data parcels
    std::uint64_t bytes_sent = 0;   ///< payload bytes of those
    double modeled_latency_total = 0; ///< seconds, from the port's timing model
    std::uint64_t retransmits_sent = 0;  ///< data parcels resent on timeout
    std::uint64_t control_parcels_sent = 0; ///< acks

    // Reliability-protocol accounting (filled by runtime::net_stats()).
    std::uint64_t retries = 0;           ///< retransmissions issued
    std::uint64_t dups_dropped = 0;      ///< receiver-side duplicate drops
    std::uint64_t corrupt_dropped = 0;   ///< checksum-mismatch drops
    std::uint64_t reorders_buffered = 0; ///< out-of-order parcels held
    std::uint64_t delivery_failures = 0; ///< retry budget exhausted
    std::uint64_t peer_deaths = 0;       ///< ranks declared dead (ISSUE 10)
    std::uint64_t dead_dropped = 0;      ///< parcels dropped at/for dead ranks
};

class runtime;

/// Transport interface. Implementations live in src/net (the MPI-like
/// two-sided port, the libfabric-like one-sided port, and the fault-injecting
/// decorator around either).
class parcelport {
  public:
    virtual ~parcelport() = default;
    /// Asynchronously transport the parcel and invoke runtime::deliver at
    /// the destination. Thread-safe. May lose, duplicate, reorder or corrupt
    /// the parcel — the runtime's reliability layer recovers.
    virtual void send(parcel p) = 0;
    virtual const char* name() const = 0;
    virtual port_stats stats() const = 0;
};

using parcelport_factory =
    std::function<std::unique_ptr<parcelport>(runtime&)>;

/// Reliable-delivery protocol knobs. The defaults are generous enough that a
/// fault-free run never retransmits spuriously, yet a 10%-loss campaign
/// completes in well under a second.
struct reliability_params {
    /// First retransmit after this long without an ack; doubles per attempt.
    std::chrono::microseconds retransmit_timeout{3000};
    std::chrono::microseconds max_backoff{200000};
    /// Retransmissions per parcel before giving up and reporting an error.
    unsigned retry_budget = 14;
    /// Retransmit-scan cadence.
    std::chrono::microseconds tick{500};
};

class runtime {
  public:
    /// Create `nlocalities` logical localities with `threads_per_locality`
    /// worker threads each, communicating through the given parcelport.
    runtime(int nlocalities, parcelport_factory make_port,
            unsigned threads_per_locality = 1,
            reliability_params rel = reliability_params{});
    ~runtime();

    int size() const { return static_cast<int>(pools_.size()); }
    rt::thread_pool& pool(int rank);
    parcelport& port() { return *port_; }

    // ---- actions -----------------------------------------------------------

    /// Register an action; must be done before any apply() and is process-
    /// wide (all localities share the table, as all nodes run the same
    /// binary). Handler runs on the destination locality's pool. An action
    /// that throws does NOT take down the pool: the exception is routed into
    /// the runtime's error channel (take_errors()).
    action_id register_action(std::string name,
                              std::function<void(int here, iarchive)> fn);

    /// Send an active message: run action `a` on locality `dest` with the
    /// given arguments. Fire-and-forget; completion can be signalled back by
    /// the action itself (continuation-passing, as HPX applies do). Delivery
    /// is exactly-once and in apply() order per destination, retransmitted
    /// as needed over a lossy transport.
    void apply(int dest, action_id a, oarchive args);

    /// Called by parcelports on (possibly duplicated / reordered / corrupted)
    /// delivery: verifies, dedups, reorders and schedules the action.
    void deliver(parcel p);

    // ---- AGAS --------------------------------------------------------------

    /// Create a new global id owned by `owner`.
    gid register_object(int owner);
    int owner_of(gid g) const;
    /// Move ownership; buffered channel traffic follows the object.
    void migrate(gid g, int new_owner);

    // ---- gid-addressed channels (halo exchange abstraction, §5.2) ----------

    /// Push a value into the channel of object `g` (routed to the owner as a
    /// parcel; local fast path when the owner is this locality).
    void channel_set(gid g, std::vector<double> value);
    /// Fetch the next value of `g`'s channel; must be called on the OWNER
    /// locality (receives are local, as in Octo-Tiger's halo pattern).
    rt::future<std::vector<double>> channel_get(gid g);

    // ---- quiescence & failure detection ------------------------------------

    /// Block until every parcel sent so far has been delivered (or has
    /// exhausted its retry budget and been reported through take_errors())
    /// and every scheduled task has run (tests and teardown).
    void wait_quiet();

    /// Deadline-taking wait_quiet: returns false if the runtime did not
    /// quiesce within `timeout` (bounded-time failure detection — a lost
    /// parcel can no longer hang a run forever).
    [[nodiscard]] bool wait_quiet_for(std::chrono::nanoseconds timeout);

    /// Drain the error channel: undeliverable parcels (retry budget
    /// exhausted) and exceptions thrown by action handlers.
    [[nodiscard]] std::vector<std::string> take_errors();
    std::size_t error_count() const;

    /// Transport stats merged with the reliability-protocol counters
    /// (retries, dup/corrupt drops, reorder buffering, failures).
    port_stats net_stats() const;

    // ---- node death & elastic recovery (ISSUE 10) --------------------------

    /// Fault injection: locality `rank` dies mid-step. Its pool stops
    /// accepting work and its parcelport side goes silent — inbound data
    /// parcels are dropped WITHOUT an ack, so senders keep retransmitting
    /// until the membership layer declares the rank dead. This is ground
    /// truth only the injector knows; survivors learn of it via heartbeats.
    /// (Model note: parcels carry no source rank, so the victim's *outbound*
    /// reliability state is process-shared and unaffected — the kill silences
    /// its inbound side and scheduler, which is what failure detection sees.)
    void kill(int rank);
    bool killed(int rank) const;

    /// Failure-detector verdict: cancel all retransmit state for `rank`.
    /// Every unacked parcel destined to it is dropped and the whole event is
    /// surfaced as ONE `peer_death` error-channel report — instead of each
    /// parcel burning the full exponential-backoff retry budget. Subsequent
    /// apply()s to the rank are dropped on the spot (counted, not errored:
    /// recovery re-routes the work). Idempotent.
    void declare_dead(int rank);
    bool declared_dead(int rank) const;

    /// The survivors' membership view: ranks not (yet) declared dead,
    /// ascending. A killed-but-undetected rank still appears here.
    std::vector<int> live_ranks() const;

    /// Recovery: hand every gid owned by `dead` to `heir` (AGAS metadata is
    /// replicated in the real runtime, so it survives the node; buffered
    /// channel values follow the object as in migrate()). Returns the number
    /// of gids reassigned.
    std::size_t reassign_owned(int dead, int heir);

  private:
    rt::channel<std::vector<double>>& channel_of(gid g);
    void drain_strand(int dest);
    void handle_ack(int dest, std::uint64_t cumulative);
    void enqueue_strand(parcel p);
    void send_ack(int dest, std::uint64_t cumulative);
    void retransmit_loop();
    void record_error(std::string what);

    /// Per-destination FIFO strand: parcels for one locality execute in
    /// arrival order (channels rely on in-order delivery; the work-stealing
    /// pools alone execute LIFO).
    struct strand {
        std::mutex mutex;
        std::deque<parcel> queue;
        bool draining = false;
    };
    std::vector<std::unique_ptr<strand>> strands_;

    std::vector<std::unique_ptr<rt::thread_pool>> pools_;

    mutable std::mutex actions_mutex_;
    std::vector<std::function<void(int, iarchive)>> actions_;
    std::vector<std::string> action_names_;

    mutable std::mutex agas_mutex_;
    std::map<gid, int> owners_;
    std::atomic<gid> next_gid_{1};
    std::map<gid, std::unique_ptr<rt::channel<std::vector<double>>>> channels_;

    // ---- reliability state (declared before port_: the port's destructor
    // may still deliver straggler acks/dups into it) -------------------------
    struct unacked_entry {
        parcel p; ///< retransmit copy (checksum already computed)
        std::chrono::steady_clock::time_point next_resend;
        std::chrono::microseconds backoff;
        unsigned attempts = 0;
    };
    struct receiver_state {
        std::uint64_t expected = 0;           ///< next in-order seq wanted
        std::map<std::uint64_t, parcel> held; ///< out-of-order stash
    };
    struct reliability_state {
        std::mutex mutex;
        std::vector<std::uint64_t> next_seq;       ///< per dest, sender side
        std::map<std::pair<int, std::uint64_t>, unacked_entry> unacked;
        std::vector<receiver_state> rx;
        std::vector<char> killed; ///< ground truth: rank died (injector)
        std::vector<char> dead;   ///< verdict: rank declared dead (detector)
        std::condition_variable cv; ///< wakes/retires the retransmit thread
        bool stop = false;
        std::atomic<std::uint64_t> retries{0};
        std::atomic<std::uint64_t> dups_dropped{0};
        std::atomic<std::uint64_t> corrupt_dropped{0};
        std::atomic<std::uint64_t> reorders_buffered{0};
        std::atomic<std::uint64_t> delivery_failures{0};
        std::atomic<std::uint64_t> peer_deaths{0};
        std::atomic<std::uint64_t> dead_dropped{0};
    };
    mutable reliability_state rel_; ///< const accessors lock rel_.mutex
    reliability_params rel_params_;

    mutable std::mutex errors_mutex_;
    std::vector<std::string> errors_;

    /// Parcels applied but not yet acked (or failed). Strand tasks for every
    /// acked parcel are posted before the ack is sent, so once this reaches
    /// zero, pool wait_idle() covers the rest.
    std::atomic<std::uint64_t> inflight_parcels_{0};
    action_id channel_set_action_ = 0;

    std::unique_ptr<parcelport> port_;
    std::thread retransmit_;
};

} // namespace octo::dist

#pragma once
// The distributed-runtime substrate (HPX substitution, DESIGN.md):
//   * localities — logical "compute nodes" hosted in one process, each with
//     its own task pool,
//   * actions — registered functions triggered by parcels ("active messages
//     are used to transfer data and trigger a function on a remote node",
//     paper §5.2),
//   * an AGAS-style registry mapping global ids to owner localities, with
//     migration ("Even when a grid cell is migrated from one node to another
//     during operation, the runtime manages the updated destination address
//     transparently"),
//   * gid-addressed channels for halo exchange with future-based receives.
//
// Parcels are transported by a pluggable parcelport (src/net): the runtime
// hands the port a serialized parcel; the port delivers it (applying its
// latency/overhead model) by calling runtime::deliver on the destination.

#include <atomic>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "dist/serialize.hpp"
#include "runtime/channel.hpp"
#include "runtime/future.hpp"
#include "runtime/thread_pool.hpp"

namespace octo::dist {

using gid = std::uint64_t;
using action_id = std::uint32_t;

struct parcel {
    int dest = 0;
    action_id action = 0;
    std::vector<std::byte> payload;
};

struct port_stats {
    std::uint64_t parcels_sent = 0;
    std::uint64_t bytes_sent = 0;
    double modeled_latency_total = 0; ///< seconds, from the port's timing model
};

class runtime;

/// Transport interface. Implementations live in src/net (the MPI-like
/// two-sided port and the libfabric-like one-sided port).
class parcelport {
  public:
    virtual ~parcelport() = default;
    /// Asynchronously transport the parcel and invoke runtime::deliver at
    /// the destination. Thread-safe.
    virtual void send(parcel p) = 0;
    virtual const char* name() const = 0;
    virtual port_stats stats() const = 0;
};

using parcelport_factory =
    std::function<std::unique_ptr<parcelport>(runtime&)>;

class runtime {
  public:
    /// Create `nlocalities` logical localities with `threads_per_locality`
    /// worker threads each, communicating through the given parcelport.
    runtime(int nlocalities, parcelport_factory make_port,
            unsigned threads_per_locality = 1);
    ~runtime();

    int size() const { return static_cast<int>(pools_.size()); }
    rt::thread_pool& pool(int rank);
    parcelport& port() { return *port_; }

    // ---- actions -----------------------------------------------------------

    /// Register an action; must be done before any apply() and is process-
    /// wide (all localities share the table, as all nodes run the same
    /// binary). Handler runs on the destination locality's pool.
    action_id register_action(std::string name,
                              std::function<void(int here, iarchive)> fn);

    /// Send an active message: run action `a` on locality `dest` with the
    /// given arguments. Fire-and-forget; completion can be signalled back by
    /// the action itself (continuation-passing, as HPX applies do).
    void apply(int dest, action_id a, oarchive args);

    /// Called by parcelports on delivery: schedules the action.
    void deliver(parcel p);

    // ---- AGAS --------------------------------------------------------------

    /// Create a new global id owned by `owner`.
    gid register_object(int owner);
    int owner_of(gid g) const;
    /// Move ownership; buffered channel traffic follows the object.
    void migrate(gid g, int new_owner);

    // ---- gid-addressed channels (halo exchange abstraction, §5.2) ----------

    /// Push a value into the channel of object `g` (routed to the owner as a
    /// parcel; local fast path when the owner is this locality).
    void channel_set(gid g, std::vector<double> value);
    /// Fetch the next value of `g`'s channel; must be called on the OWNER
    /// locality (receives are local, as in Octo-Tiger's halo pattern).
    rt::future<std::vector<double>> channel_get(gid g);

    /// Block until every parcel sent so far has been delivered and every
    /// scheduled task has run (tests and teardown).
    void wait_quiet();

  private:
    rt::channel<std::vector<double>>& channel_of(gid g);
    void drain_strand(int dest);

    /// Per-destination FIFO strand: parcels for one locality execute in
    /// arrival order (channels rely on in-order delivery; the work-stealing
    /// pools alone execute LIFO).
    struct strand {
        std::mutex mutex;
        std::deque<parcel> queue;
        bool draining = false;
    };
    std::vector<std::unique_ptr<strand>> strands_;

    std::vector<std::unique_ptr<rt::thread_pool>> pools_;
    std::unique_ptr<parcelport> port_;

    mutable std::mutex actions_mutex_;
    std::vector<std::function<void(int, iarchive)>> actions_;
    std::vector<std::string> action_names_;

    mutable std::mutex agas_mutex_;
    std::map<gid, int> owners_;
    std::atomic<gid> next_gid_{1};
    std::map<gid, std::unique_ptr<rt::channel<std::vector<double>>>> channels_;

    std::atomic<std::uint64_t> inflight_parcels_{0};
    action_id channel_set_action_ = 0;
};

} // namespace octo::dist

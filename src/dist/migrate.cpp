#include "dist/migrate.hpp"

#include <cstring>

#include "runtime/apex.hpp"
#include "support/assert.hpp"
#include "support/error.hpp"

namespace octo::dist {

namespace {
constexpr std::size_t field_image_doubles =
    static_cast<std::size_t>(amr::n_fields) * amr::NX3;
} // namespace

void serialize_subgrid(oarchive& ar, amr::node_key key, const amr::subgrid& sg) {
    ar.write(key);
    ar.write(sg.geom.origin.x);
    ar.write(sg.geom.origin.y);
    ar.write(sg.geom.origin.z);
    ar.write(sg.geom.dx);
    // The field planes are one contiguous array starting at field 0 — write
    // the whole image in one shot (byte-exact, ghosts included).
    const auto* p = sg.field_data(0);
    ar.write_vector(std::vector<double>(p, p + field_image_doubles));
}

std::pair<amr::node_key, amr::subgrid> deserialize_subgrid(iarchive& ar) {
    const auto key = ar.read<amr::node_key>();
    amr::subgrid sg;
    sg.geom.origin.x = ar.read<double>();
    sg.geom.origin.y = ar.read<double>();
    sg.geom.origin.z = ar.read<double>();
    sg.geom.dx = ar.read<double>();
    const auto img = ar.read_vector<double>();
    if (img.size() != field_image_doubles)
        throw error("migrate: field image size mismatch");
    std::memcpy(sg.field_data(0), img.data(),
                field_image_doubles * sizeof(double));
    return {key, std::move(sg)};
}

subgrid_migrator::subgrid_migrator(runtime& rt)
    : rt_(rt), stores_(static_cast<std::size_t>(rt.size())) {
    install_action_ =
        rt_.register_action("lb.install_subgrid", [this](int here, iarchive ar) {
            auto [key, sg] = deserialize_subgrid(ar);
            {
                std::lock_guard lock(mutex_);
                stores_[static_cast<std::size_t>(here)].insert_or_assign(
                    key, std::move(sg));
                stats_.subgrids_received += 1;
            }
            rt::apex_count("lb.migration_installs");
        });
}

void subgrid_migrator::put(int rank, amr::node_key key, const amr::subgrid& sg) {
    std::lock_guard lock(mutex_);
    stores_[static_cast<std::size_t>(rank)].insert_or_assign(key, sg);
}

bool subgrid_migrator::contains(int rank, amr::node_key key) const {
    std::lock_guard lock(mutex_);
    return stores_[static_cast<std::size_t>(rank)].count(key) != 0;
}

bool subgrid_migrator::get(int rank, amr::node_key key, amr::subgrid& out) const {
    std::lock_guard lock(mutex_);
    const auto& store = stores_[static_cast<std::size_t>(rank)];
    const auto it = store.find(key);
    if (it == store.end()) return false;
    out = it->second;
    return true;
}

std::size_t subgrid_migrator::count(int rank) const {
    std::lock_guard lock(mutex_);
    return stores_[static_cast<std::size_t>(rank)].size();
}

void subgrid_migrator::migrate(const std::vector<amr::migration_record>& schedule) {
    for (const auto& m : schedule) {
        // Extract the subgrid from the source store under the lock, then
        // serialize and send outside it (apply() may run local actions
        // inline, which would re-take mutex_).
        amr::subgrid sg;
        {
            std::lock_guard lock(mutex_);
            auto& src = stores_[static_cast<std::size_t>(m.from)];
            const auto it = src.find(m.key);
            if (it == src.end())
                throw error("migrate: schedule references a subgrid the "
                            "source rank does not hold");
            sg = std::move(it->second);
            src.erase(it);
            if (m.from == m.to) {
                stores_[static_cast<std::size_t>(m.to)].insert_or_assign(
                    m.key, std::move(sg));
                stats_.local_moves += 1;
                continue;
            }
        }
        oarchive ar;
        serialize_subgrid(ar, m.key, sg);
        const std::size_t bytes = ar.size();
        rt_.apply(m.to, install_action_, std::move(ar));
        {
            std::lock_guard lock(mutex_);
            stats_.subgrids_sent += 1;
            stats_.bytes_sent += bytes;
        }
        rt::apex_count("lb.migration_parcels");
        rt::apex_count("lb.migration_bytes", bytes);
    }
}

std::size_t subgrid_migrator::drop_rank(int rank) {
    std::lock_guard lock(mutex_);
    auto& store = stores_[static_cast<std::size_t>(rank)];
    const std::size_t lost = store.size();
    store.clear();
    stats_.dropped += lost;
    return lost;
}

std::uint64_t subgrid_migrator::reload(const amr::tree& restored) {
    std::uint64_t installed = 0;
    {
        std::lock_guard lock(mutex_);
        for (auto& s : stores_) s.clear();
        for (const auto& level : restored.levels()) {
            for (const amr::node_key k : level) {
                const auto& nd = restored.node(k);
                if (nd.refined || nd.fields == nullptr) continue;
                OCTO_ASSERT(nd.owner >= 0 &&
                            nd.owner < static_cast<int>(stores_.size()));
                stores_[static_cast<std::size_t>(nd.owner)].insert_or_assign(
                    k, *nd.fields);
                ++installed;
            }
        }
        stats_.reloads += installed;
    }
    rt::apex_count("lb.recovered_subgrids", installed);
    return installed;
}

migration_stats subgrid_migrator::stats() const {
    std::lock_guard lock(mutex_);
    return stats_;
}

} // namespace octo::dist

#pragma once
// Membership & failure detection (ISSUE 10). Survivors cannot observe a node
// death directly — they infer it. The protocol here is the smallest honest
// version of what production AMT runtimes do:
//
//   * heartbeat parcels ride the reliable runtime itself (ping -> pong as
//     ordinary exactly-once actions), so a peer counts as alive only if its
//     scheduler actually ran our action and its parcelport actually carried
//     the answer back;
//   * the timeout detector is built on runtime::wait_quiet_for — after a
//     ping round, a healthy cluster quiesces almost immediately, while a
//     killed rank's pings sit unacked and retransmitting, so the bounded
//     wait expires and the silent peers are declared dead;
//   * declaration is runtime::declare_dead: retransmit state for the dead
//     rank is cancelled and surfaced as ONE peer_death error-channel event.
//
// Time-to-detect is therefore bounded by membership_params::death_timeout
// (plus scheduling noise), which is the knob bench_recovery sweeps.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "dist/locality.hpp"

namespace octo::dist {

struct membership_params {
    /// Probe cadence of the background monitor (start()).
    std::chrono::microseconds heartbeat_interval{2000};
    /// Detection bound: a peer that has not answered a ping round within
    /// this long is declared dead.
    std::chrono::microseconds death_timeout{50000};
};

struct membership_stats {
    std::uint64_t probes = 0;          ///< ping rounds issued
    std::uint64_t pings_sent = 0;      ///< heartbeat parcels sent
    std::uint64_t pongs_received = 0;  ///< in-round answers seen
    std::uint64_t deaths_declared = 0; ///< ranks this detector declared dead
};

class membership {
  public:
    /// Registers the heartbeat actions on `rt`; `rt` must outlive this
    /// object, and the runtime must be quiesced before destroying it (a
    /// straggler pong would otherwise invoke a dangling handler).
    explicit membership(runtime& rt, membership_params params = {});
    ~membership();

    membership(const membership&) = delete;
    membership& operator=(const membership&) = delete;

    /// One synchronous probe round: ping every live peer from the lowest
    /// live rank (the monitor), wait — bounded by death_timeout — for the
    /// network to quiesce, and declare every silent peer dead via
    /// runtime::declare_dead. Returns the ranks newly declared dead.
    std::vector<int> probe();

    /// Background monitor: probe() every heartbeat_interval until stop().
    void start();
    void stop();

    /// Invoked (outside all locks) for each rank a probe declares dead —
    /// the recovery coordinator's entry point.
    void on_death(std::function<void(int)> cb);

    membership_stats stats() const;
    const membership_params& params() const { return params_; }

  private:
    void monitor_loop();

    runtime& rt_;
    membership_params params_;
    action_id ping_ = 0;
    action_id pong_ = 0;

    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::uint64_t round_ = 0;    ///< current probe round (stale pongs ignored)
    std::set<int> answered_;     ///< ranks that ponged in the current round
    membership_stats stats_;
    std::function<void(int)> on_death_;

    std::mutex monitor_mutex_;
    std::condition_variable monitor_cv_;
    bool monitor_stop_ = false;
    std::thread monitor_;
};

} // namespace octo::dist

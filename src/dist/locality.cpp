#include "dist/locality.hpp"

#include <chrono>
#include <thread>

#include "support/assert.hpp"

namespace octo::dist {

runtime::runtime(int nlocalities, parcelport_factory make_port,
                 unsigned threads_per_locality) {
    OCTO_ASSERT(nlocalities >= 1);
    pools_.reserve(static_cast<std::size_t>(nlocalities));
    for (int i = 0; i < nlocalities; ++i) {
        pools_.push_back(std::make_unique<rt::thread_pool>(threads_per_locality));
        strands_.push_back(std::make_unique<strand>());
    }
    port_ = make_port(*this);
    OCTO_ASSERT(port_ != nullptr);

    // Built-in action: channel_set routed to an object's owner.
    channel_set_action_ = register_action("dist::channel_set", [this](int, iarchive a) {
        const gid g = a.read<gid>();
        auto value = a.read_vector<double>();
        channel_of(g).set(std::move(value));
    });
}

runtime::~runtime() { wait_quiet(); }

rt::thread_pool& runtime::pool(int rank) {
    OCTO_ASSERT(rank >= 0 && rank < size());
    return *pools_[static_cast<std::size_t>(rank)];
}

action_id runtime::register_action(std::string name,
                                   std::function<void(int, iarchive)> fn) {
    std::lock_guard lock(actions_mutex_);
    actions_.push_back(std::move(fn));
    action_names_.push_back(std::move(name));
    return static_cast<action_id>(actions_.size() - 1);
}

void runtime::apply(int dest, action_id a, oarchive args) {
    OCTO_ASSERT(dest >= 0 && dest < size());
    {
        std::lock_guard lock(actions_mutex_);
        OCTO_ASSERT_MSG(a < actions_.size(), "unregistered action");
    }
    inflight_parcels_.fetch_add(1, std::memory_order_relaxed);
    port_->send(parcel{dest, a, args.take()});
}

void runtime::deliver(parcel p) {
    const int dest = p.dest;
    auto& st = *strands_[static_cast<std::size_t>(dest)];
    bool start = false;
    {
        std::lock_guard lock(st.mutex);
        st.queue.push_back(std::move(p));
        if (!st.draining) {
            st.draining = true;
            start = true;
        }
    }
    if (start) pool(dest).post([this, dest] { drain_strand(dest); });
}

void runtime::drain_strand(int dest) {
    auto& st = *strands_[static_cast<std::size_t>(dest)];
    for (;;) {
        parcel p;
        {
            std::lock_guard lock(st.mutex);
            if (st.queue.empty()) {
                st.draining = false;
                return;
            }
            p = std::move(st.queue.front());
            st.queue.pop_front();
        }
        std::function<void(int, iarchive)> fn;
        {
            std::lock_guard lock(actions_mutex_);
            OCTO_ASSERT(p.action < actions_.size());
            fn = actions_[p.action];
        }
        fn(dest, iarchive(p.payload));
        inflight_parcels_.fetch_sub(1, std::memory_order_acq_rel);
    }
}

gid runtime::register_object(int owner) {
    OCTO_ASSERT(owner >= 0 && owner < size());
    const gid g = next_gid_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard lock(agas_mutex_);
    owners_[g] = owner;
    return g;
}

int runtime::owner_of(gid g) const {
    std::lock_guard lock(agas_mutex_);
    auto it = owners_.find(g);
    OCTO_ASSERT_MSG(it != owners_.end(), "unknown gid");
    return it->second;
}

void runtime::migrate(gid g, int new_owner) {
    OCTO_ASSERT(new_owner >= 0 && new_owner < size());
    std::lock_guard lock(agas_mutex_);
    auto it = owners_.find(g);
    OCTO_ASSERT_MSG(it != owners_.end(), "unknown gid");
    it->second = new_owner;
    // The channel object (with any buffered values) stays in the shared
    // registry: user code addressing the gid keeps working, which is the
    // migration transparency the paper describes.
}

rt::channel<std::vector<double>>& runtime::channel_of(gid g) {
    std::lock_guard lock(agas_mutex_);
    auto& slot = channels_[g];
    if (!slot) slot = std::make_unique<rt::channel<std::vector<double>>>();
    return *slot;
}

void runtime::channel_set(gid g, std::vector<double> value) {
    const int owner = owner_of(g);
    // Local fast path is intentionally identical in semantics to the remote
    // one — "semantic and syntactic equivalence of local and remote
    // operations" (paper §4.1); we still route via the parcelport so the
    // port's accounting sees every exchange.
    oarchive a;
    a.write(g);
    a.write_vector(value);
    apply(owner, channel_set_action_, std::move(a));
}

rt::future<std::vector<double>> runtime::channel_get(gid g) {
    return channel_of(g).get();
}

void runtime::wait_quiet() {
    while (inflight_parcels_.load(std::memory_order_acquire) != 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    for (auto& p : pools_) p->wait_idle();
}

} // namespace octo::dist

#include "dist/locality.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "runtime/apex.hpp"
#include "sanitize/hooks.hpp"
#include "support/assert.hpp"
#include "support/crc32.hpp"

namespace octo::dist {

// `checksum` is the digest this function computes, and `attempt` is
// port-side retransmit bookkeeping — retransmits must hash identically so
// receivers dedup them as one parcel. Both are excluded by design:
// lint: allow(serialization-coverage): checksum is the digest itself; attempt must not change the hash across retransmits
std::uint32_t parcel_crc(const parcel& p) {
    // Covers everything a corrupted transport could damage except `attempt`
    // (a port-side bookkeeping field: retransmits must carry the identical
    // checksum so receivers treat them as the same parcel).
    std::uint32_t c = crc32(&p.dest, sizeof(p.dest));
    c = crc32(&p.action, sizeof(p.action), c);
    c = crc32(&p.kind, sizeof(p.kind), c);
    c = crc32(&p.seq, sizeof(p.seq), c);
    return crc32(p.payload.data(), p.payload.size(), c);
}

runtime::runtime(int nlocalities, parcelport_factory make_port,
                 unsigned threads_per_locality, reliability_params rel)
    : rel_params_(rel) {
    OCTO_ASSERT(nlocalities >= 1);
    pools_.reserve(static_cast<std::size_t>(nlocalities));
    for (int i = 0; i < nlocalities; ++i) {
        pools_.push_back(std::make_unique<rt::thread_pool>(threads_per_locality));
        strands_.push_back(std::make_unique<strand>());
    }
    rel_.next_seq.assign(static_cast<std::size_t>(nlocalities), 0);
    rel_.rx.resize(static_cast<std::size_t>(nlocalities));
    rel_.killed.assign(static_cast<std::size_t>(nlocalities), 0);
    rel_.dead.assign(static_cast<std::size_t>(nlocalities), 0);
    port_ = make_port(*this);
    OCTO_ASSERT(port_ != nullptr);

    // Built-in action: channel_set routed to an object's owner.
    channel_set_action_ = register_action("dist::channel_set", [this](int, iarchive a) {
        const gid g = a.read<gid>();
        auto value = a.read_vector<double>();
        channel_of(g).set(std::move(value));
    });

    retransmit_ = std::thread([this] { retransmit_loop(); });
}

runtime::~runtime() {
    // Quiesce first — the retransmit thread is what drives lost parcels to
    // either delivery or a bounded-budget failure, so it must outlive the
    // wait. Straggler duplicates/acks delivered during the port's own
    // destruction still find rel_ alive (declared before port_).
    wait_quiet();
    {
        std::lock_guard lock(rel_.mutex);
        rel_.stop = true;
    }
    rel_.cv.notify_all();
    if (retransmit_.joinable()) retransmit_.join();
}

rt::thread_pool& runtime::pool(int rank) {
    OCTO_ASSERT(rank >= 0 && rank < size());
    return *pools_[static_cast<std::size_t>(rank)];
}

action_id runtime::register_action(std::string name,
                                   std::function<void(int, iarchive)> fn) {
    std::lock_guard lock(actions_mutex_);
    actions_.push_back(std::move(fn));
    action_names_.push_back(std::move(name));
    return static_cast<action_id>(actions_.size() - 1);
}

void runtime::apply(int dest, action_id a, oarchive args) {
    OCTO_ASSERT(dest >= 0 && dest < size());
    {
        std::lock_guard lock(actions_mutex_);
        OCTO_ASSERT_MSG(a < actions_.size(), "unregistered action");
    }
    parcel p;
    p.dest = dest;
    p.action = a;
    p.payload = args.take();
    p.kind = parcel_kind::data;
    {
        std::lock_guard lock(rel_.mutex);
        if (rel_.dead[static_cast<std::size_t>(dest)]) {
            // Declared-dead destination: drop on the spot. Counted, not an
            // error — recovery re-routes the work, and one peer_death event
            // already reported the loss; per-parcel errors would drown it.
            rel_.dead_dropped.fetch_add(1, std::memory_order_relaxed);
            rt::apex_count("net.dead_dropped");
            return;
        }
        // acq_rel inside the same critical section that assigns the seq: a
        // concurrent wait_quiet() must not observe zero after the entry is
        // queued for transmission.
        inflight_parcels_.fetch_add(1, std::memory_order_acq_rel);
        p.seq = rel_.next_seq[static_cast<std::size_t>(dest)]++;
        p.checksum = parcel_crc(p);
        unacked_entry e;
        e.p = p; // retransmit copy, checksum included
        e.backoff = rel_params_.retransmit_timeout;
        e.next_resend = std::chrono::steady_clock::now() + e.backoff;
        rel_.unacked.emplace(std::pair(dest, p.seq), std::move(e));
    }
    // Send outside the lock: a one-sided port delivers synchronously, and
    // delivery re-enters the reliability state (dedup, ack handling).
    port_->send(std::move(p));
}

void runtime::deliver(parcel p) {
    // A lossy transport may hand us anything: verify the checksum first.
    // Corrupt data parcels are dropped (the sender's retransmit recovers);
    // corrupt acks are dropped (the retransmit-triggered duplicate re-acks).
    if (p.checksum != parcel_crc(p)) {
        rel_.corrupt_dropped.fetch_add(1, std::memory_order_relaxed);
        rt::apex_count("net.corrupt_dropped");
        return;
    }
    if (p.kind == parcel_kind::ack) {
        handle_ack(p.dest, p.seq);
        return;
    }

    const int dest = p.dest;
    OCTO_ASSERT(dest >= 0 && dest < size());
    std::uint64_t cumulative = 0;
    bool dup = false;
    bool held = false;
    {
        std::lock_guard lock(rel_.mutex);
        if (rel_.killed[static_cast<std::size_t>(dest)]) {
            // The destination died: its parcelport is silent. No ack, no
            // dedup bookkeeping — the sender keeps retransmitting until the
            // membership layer declares the rank dead and cancels the state.
            rel_.dead_dropped.fetch_add(1, std::memory_order_relaxed);
            return;
        }
        auto& rx = rel_.rx[static_cast<std::size_t>(dest)];
        if (p.seq < rx.expected || rx.held.count(p.seq) != 0) {
            dup = true; // seen before (duplicate or already-buffered copy)
        } else if (p.seq == rx.expected) {
            enqueue_strand(std::move(p));
            ++rx.expected;
            // The gap just closed may release buffered successors too.
            auto it = rx.held.begin();
            while (it != rx.held.end() && it->first == rx.expected) {
                enqueue_strand(std::move(it->second));
                it = rx.held.erase(it);
                ++rx.expected;
            }
        } else {
            held = true; // out of order: stash until the gap fills
            rx.held.emplace(p.seq, std::move(p));
        }
        cumulative = rx.expected;
        // The enqueues MUST happen before rel_.mutex is released: the moment
        // another thread can observe the advanced rx.expected (a concurrent
        // duplicate sends a cumulative ack with it), the sender may count the
        // parcel delivered — so its strand task has to be posted already, or
        // wait_quiet() could return with the action still unscheduled. Same
        // section also fixes the release order: two concurrently released
        // batches would otherwise race to the strand.
    }
    if (dup) {
        rel_.dups_dropped.fetch_add(1, std::memory_order_relaxed);
        rt::apex_count("net.dups_dropped");
    }
    if (held) {
        rel_.reorders_buffered.fetch_add(1, std::memory_order_relaxed);
        rt::apex_count("net.reorders_buffered");
    }
    // Cumulative ack — sent even for duplicates, so a lost ack is healed by
    // the retransmit it provoked. Outside rel_.mutex: a one-sided port
    // delivers the ack synchronously and handle_ack re-takes the lock.
    send_ack(dest, cumulative);
}

void runtime::enqueue_strand(parcel p) {
    const int dest = p.dest;
    auto& st = *strands_[static_cast<std::size_t>(dest)];
    bool start = false;
    {
        std::lock_guard lock(st.mutex);
        // Detector edge: the sender's payload writes happen-before the
        // action body that reads them (mirrors rt::channel's buffered path).
        sanitize::hb_before(&st);
        st.queue.push_back(std::move(p));
        if (!st.draining) {
            st.draining = true;
            start = true;
        }
    }
    if (start && !pool(dest).post([this, dest] { drain_strand(dest); })) {
        // Pool closed out from under us (direct close() without kill()):
        // the strand contents die with the rank.
        std::lock_guard lock(st.mutex);
        st.draining = false;
    }
}

void runtime::drain_strand(int dest) {
    auto& st = *strands_[static_cast<std::size_t>(dest)];
    for (;;) {
        parcel p;
        {
            std::lock_guard lock(st.mutex);
            sanitize::hb_after(&st);
            if (st.queue.empty()) {
                st.draining = false;
                return;
            }
            p = std::move(st.queue.front());
            st.queue.pop_front();
        }
        std::function<void(int, iarchive)> fn;
        const char* name = "?";
        {
            std::lock_guard lock(actions_mutex_);
            OCTO_ASSERT(p.action < actions_.size());
            fn = actions_[p.action];
            name = action_names_[p.action].c_str();
        }
        // An action that throws must not take down the locality's pool (the
        // worker would std::terminate): route the exception into the error
        // channel and keep draining — the strand stays live.
        try {
            fn(dest, iarchive(p.payload));
        } catch (const std::exception& e) {
            rt::apex_count("dist.action_errors");
            record_error("action '" + std::string(name) + "' on locality " +
                         std::to_string(dest) + " threw: " + e.what());
        } catch (...) {
            rt::apex_count("dist.action_errors");
            record_error("action '" + std::string(name) + "' on locality " +
                         std::to_string(dest) + " threw a non-std exception");
        }
    }
}

void runtime::handle_ack(int dest, std::uint64_t cumulative) {
    std::uint64_t acked = 0;
    {
        std::lock_guard lock(rel_.mutex);
        auto it = rel_.unacked.lower_bound({dest, 0});
        while (it != rel_.unacked.end() && it->first.first == dest &&
               it->first.second < cumulative) {
            it = rel_.unacked.erase(it);
            ++acked;
        }
    }
    if (acked > 0) {
        inflight_parcels_.fetch_sub(acked, std::memory_order_acq_rel);
    }
}

void runtime::send_ack(int dest, std::uint64_t cumulative) {
    parcel a;
    a.dest = dest; // the locality whose inbound stream is acknowledged
    a.kind = parcel_kind::ack;
    a.seq = cumulative;
    a.checksum = parcel_crc(a);
    port_->send(std::move(a));
}

void runtime::retransmit_loop() {
    std::unique_lock lock(rel_.mutex);
    for (;;) {
        rel_.cv.wait_for(lock, rel_params_.tick);
        if (rel_.stop) return;
        const auto now = std::chrono::steady_clock::now();
        std::vector<parcel> resend;
        std::vector<std::string> failures;
        for (auto it = rel_.unacked.begin(); it != rel_.unacked.end();) {
            auto& e = it->second;
            if (e.next_resend > now) {
                ++it;
                continue;
            }
            if (e.attempts >= rel_params_.retry_budget) {
                // Bounded failure detection: a dead link becomes an error
                // report, not an infinite hang.
                failures.push_back(
                    "parcel seq " + std::to_string(it->first.second) +
                    " to locality " + std::to_string(it->first.first) +
                    " undeliverable after " + std::to_string(e.attempts) +
                    " retransmits");
                it = rel_.unacked.erase(it);
                continue;
            }
            ++e.attempts;
            e.backoff = std::min(e.backoff * 2, rel_params_.max_backoff);
            e.next_resend = now + e.backoff;
            parcel copy = e.p;
            copy.attempt = e.attempts;
            resend.push_back(std::move(copy));
            ++it;
        }
        lock.unlock();
        for (auto& p : resend) {
            rel_.retries.fetch_add(1, std::memory_order_relaxed);
            rt::apex_count("net.retries");
            port_->send(std::move(p));
        }
        if (!failures.empty()) {
            rel_.delivery_failures.fetch_add(failures.size(),
                                             std::memory_order_relaxed);
            rt::apex_count("net.delivery_failures", failures.size());
            for (auto& f : failures) record_error(std::move(f));
            inflight_parcels_.fetch_sub(failures.size(),
                                        std::memory_order_acq_rel);
        }
        lock.lock();
    }
}

void runtime::record_error(std::string what) {
    std::lock_guard lock(errors_mutex_);
    errors_.push_back(std::move(what));
}

std::vector<std::string> runtime::take_errors() {
    std::lock_guard lock(errors_mutex_);
    return std::exchange(errors_, {});
}

std::size_t runtime::error_count() const {
    std::lock_guard lock(errors_mutex_);
    return errors_.size();
}

port_stats runtime::net_stats() const {
    port_stats s = port_->stats();
    s.retries = rel_.retries.load(std::memory_order_relaxed);
    s.dups_dropped = rel_.dups_dropped.load(std::memory_order_relaxed);
    s.corrupt_dropped = rel_.corrupt_dropped.load(std::memory_order_relaxed);
    s.reorders_buffered = rel_.reorders_buffered.load(std::memory_order_relaxed);
    s.delivery_failures = rel_.delivery_failures.load(std::memory_order_relaxed);
    s.peer_deaths = rel_.peer_deaths.load(std::memory_order_relaxed);
    s.dead_dropped = rel_.dead_dropped.load(std::memory_order_relaxed);
    return s;
}

void runtime::kill(int rank) {
    OCTO_ASSERT(rank >= 0 && rank < size());
    {
        std::lock_guard lock(rel_.mutex);
        rel_.killed[static_cast<std::size_t>(rank)] = 1;
    }
    // Close the pool after the parcelport goes silent: deliver() enqueues
    // strand tasks under rel_.mutex, so once the flag is visible no new
    // posts target this pool; work it had already accepted may complete
    // (the node died mid-step, not mid-instruction-retroactively).
    pool(rank).close();
}

bool runtime::killed(int rank) const {
    OCTO_ASSERT(rank >= 0 && rank < size());
    std::lock_guard lock(rel_.mutex);
    return rel_.killed[static_cast<std::size_t>(rank)] != 0;
}

void runtime::declare_dead(int rank) {
    OCTO_ASSERT(rank >= 0 && rank < size());
    std::size_t dropped = 0;
    {
        std::lock_guard lock(rel_.mutex);
        if (rel_.dead[static_cast<std::size_t>(rank)]) return; // idempotent
        rel_.dead[static_cast<std::size_t>(rank)] = 1;
        // Cancel the retransmit state: every unacked parcel destined to the
        // dead rank is dropped here, instead of each one burning the full
        // exponential-backoff retry budget in retransmit_loop().
        auto it = rel_.unacked.lower_bound({rank, 0});
        while (it != rel_.unacked.end() && it->first.first == rank) {
            it = rel_.unacked.erase(it);
            ++dropped;
        }
        // The out-of-order stash for the dead rank will never be released.
        rel_.rx[static_cast<std::size_t>(rank)].held.clear();
    }
    rel_.peer_deaths.fetch_add(1, std::memory_order_relaxed);
    rt::apex_count("net.peer_deaths");
    if (dropped > 0) {
        rel_.dead_dropped.fetch_add(dropped, std::memory_order_relaxed);
        rt::apex_count("net.dead_dropped", dropped);
        inflight_parcels_.fetch_sub(dropped, std::memory_order_acq_rel);
    }
    // ONE error-channel event for the whole death, however many parcels it
    // stranded — the recovery coordinator consumes this, not per-parcel spam.
    record_error("peer_death: locality " + std::to_string(rank) +
                 " declared dead, " + std::to_string(dropped) +
                 " unacked parcel(s) dropped");
}

bool runtime::declared_dead(int rank) const {
    OCTO_ASSERT(rank >= 0 && rank < size());
    std::lock_guard lock(rel_.mutex);
    return rel_.dead[static_cast<std::size_t>(rank)] != 0;
}

std::vector<int> runtime::live_ranks() const {
    std::vector<int> live;
    std::lock_guard lock(rel_.mutex);
    for (int r = 0; r < size(); ++r) {
        if (!rel_.dead[static_cast<std::size_t>(r)]) live.push_back(r);
    }
    return live;
}

std::size_t runtime::reassign_owned(int dead, int heir) {
    OCTO_ASSERT(heir >= 0 && heir < size());
    std::size_t n = 0;
    std::lock_guard lock(agas_mutex_);
    for (auto& [g, owner] : owners_) {
        if (owner == dead) {
            owner = heir;
            ++n;
        }
    }
    return n;
}

gid runtime::register_object(int owner) {
    OCTO_ASSERT(owner >= 0 && owner < size());
    const gid g = next_gid_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard lock(agas_mutex_);
    owners_[g] = owner;
    return g;
}

int runtime::owner_of(gid g) const {
    std::lock_guard lock(agas_mutex_);
    auto it = owners_.find(g);
    OCTO_ASSERT_MSG(it != owners_.end(), "unknown gid");
    return it->second;
}

void runtime::migrate(gid g, int new_owner) {
    OCTO_ASSERT(new_owner >= 0 && new_owner < size());
    std::lock_guard lock(agas_mutex_);
    auto it = owners_.find(g);
    OCTO_ASSERT_MSG(it != owners_.end(), "unknown gid");
    it->second = new_owner;
    // The channel object (with any buffered values) stays in the shared
    // registry: user code addressing the gid keeps working, which is the
    // migration transparency the paper describes.
}

rt::channel<std::vector<double>>& runtime::channel_of(gid g) {
    std::lock_guard lock(agas_mutex_);
    auto& slot = channels_[g];
    if (!slot) slot = std::make_unique<rt::channel<std::vector<double>>>();
    return *slot;
}

void runtime::channel_set(gid g, std::vector<double> value) {
    const int owner = owner_of(g);
    // Local fast path is intentionally identical in semantics to the remote
    // one — "semantic and syntactic equivalence of local and remote
    // operations" (paper §4.1); we still route via the parcelport so the
    // port's accounting sees every exchange.
    oarchive a;
    a.write(g);
    a.write_vector(value);
    apply(owner, channel_set_action_, std::move(a));
}

rt::future<std::vector<double>> runtime::channel_get(gid g) {
    return channel_of(g).get();
}

void runtime::wait_quiet() {
    while (inflight_parcels_.load(std::memory_order_acquire) != 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    for (auto& p : pools_) p->wait_idle();
}

bool runtime::wait_quiet_for(std::chrono::nanoseconds timeout) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    while (inflight_parcels_.load(std::memory_order_acquire) != 0) {
        if (std::chrono::steady_clock::now() >= deadline) return false;
        std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    // Network quiescence is deadline-bound above; the remaining local tasks
    // always make progress, so this tail is finite.
    for (auto& p : pools_) p->wait_idle();
    return true;
}

} // namespace octo::dist

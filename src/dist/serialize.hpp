#pragma once
// Byte-level serialization archives for parcels (paper §5.2: "the messages
// containing the serialized data and remote function as parcels"). Supports
// trivially copyable types, strings and vectors; deliberately minimal — the
// HPX parcel format is richer, but the halo-exchange payloads Octo-Tiger
// ships are flat arrays of doubles.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "support/error.hpp"

namespace octo::dist {

class oarchive {
  public:
    template <class T>
    void write(const T& v) {
        static_assert(std::is_trivially_copyable_v<T>);
        const auto* p = reinterpret_cast<const std::byte*>(&v);
        buf_.insert(buf_.end(), p, p + sizeof(T));
    }

    void write_string(const std::string& s) {
        write(static_cast<std::uint64_t>(s.size()));
        const auto* p = reinterpret_cast<const std::byte*>(s.data());
        buf_.insert(buf_.end(), p, p + s.size());
    }

    template <class T>
    void write_vector(const std::vector<T>& v) {
        static_assert(std::is_trivially_copyable_v<T>);
        write(static_cast<std::uint64_t>(v.size()));
        const auto* p = reinterpret_cast<const std::byte*>(v.data());
        buf_.insert(buf_.end(), p, p + v.size() * sizeof(T));
    }

    std::vector<std::byte> take() { return std::move(buf_); }
    std::size_t size() const { return buf_.size(); }

  private:
    std::vector<std::byte> buf_;
};

class iarchive {
  public:
    explicit iarchive(const std::vector<std::byte>& buf) : buf_(&buf) {}

    template <class T>
    T read() {
        static_assert(std::is_trivially_copyable_v<T>);
        check(sizeof(T));
        T v;
        std::memcpy(&v, buf_->data() + pos_, sizeof(T));
        pos_ += sizeof(T);
        return v;
    }

    std::string read_string() {
        const auto n = read<std::uint64_t>();
        check(n);
        std::string s(reinterpret_cast<const char*>(buf_->data() + pos_), n);
        pos_ += n;
        return s;
    }

    template <class T>
    std::vector<T> read_vector() {
        static_assert(std::is_trivially_copyable_v<T>);
        const auto n = read<std::uint64_t>();
        check(n * sizeof(T));
        std::vector<T> v(n);
        std::memcpy(v.data(), buf_->data() + pos_, n * sizeof(T));
        pos_ += n * sizeof(T);
        return v;
    }

    std::size_t remaining() const { return buf_->size() - pos_; }

  private:
    void check(std::size_t n) const {
        if (pos_ + n > buf_->size()) throw error("archive: truncated payload");
    }
    const std::vector<std::byte>* buf_;
    std::size_t pos_ = 0;
};

} // namespace octo::dist

#pragma once
// Subgrid migration over the reliable distributed runtime (ISSUE 8). The
// load balancer's rebalance_sfc emits a migration schedule — (key, from, to)
// records along the space-filling curve — and this module executes it:
// the source locality serializes the subgrid (key + geometry + every field
// plane, ghosts included) into a parcel and ships it through the PR 5
// exactly-once delivery protocol, so migration survives a lossy transport
// (drops, duplicates, reorders, corruption) without ever duplicating or
// losing a subgrid. Paper §5.2's AGAS promise — "Even when a grid cell is
// migrated from one node to another during operation, the runtime manages
// the updated destination address transparently" — is realized by updating
// the per-locality stores atomically with delivery.
//
// Bit identity: the payload is a byte-exact image of the subgrid's field
// storage. A migrated-then-checkpointed run is byte-identical to a run that
// never migrated (tests/test_lb.cpp asserts this through the CRC'd
// checkpoint format).
//
// Allocation churn: subgrid field storage is an aligned_vector, so receive-
// side construction recycles parked buffers (support/buffer_recycler) —
// steady-state migration performs no raw allocations after warm-up.

#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "amr/partition.hpp"
#include "amr/subgrid.hpp"
#include "amr/tree.hpp"
#include "dist/locality.hpp"
#include "dist/serialize.hpp"

namespace octo::dist {

struct migration_stats {
    std::uint64_t subgrids_sent = 0;     ///< shipped as parcels (from != to)
    std::uint64_t subgrids_received = 0; ///< installed by the action handler
    std::uint64_t bytes_sent = 0;        ///< serialized payload bytes
    std::uint64_t local_moves = 0;       ///< from == to (no parcel)
    std::uint64_t dropped = 0;           ///< discarded with a dead rank
    std::uint64_t reloads = 0;           ///< reinstalled from a checkpoint
};

/// Serialize one keyed subgrid: key, geometry, then the full field image
/// (n_fields x NX^3 doubles, ghosts included) — byte-exact round trip.
void serialize_subgrid(oarchive& ar, amr::node_key key, const amr::subgrid& sg);
/// Inverse of serialize_subgrid. Throws octo::error on a truncated payload.
std::pair<amr::node_key, amr::subgrid> deserialize_subgrid(iarchive& ar);

/// Per-locality subgrid stores plus the migration action. One instance
/// fronts a runtime: construct it BEFORE any apply() traffic (action
/// registration is process-wide), seed the source stores with put(), then
/// execute rebalance schedules with migrate() + rt.wait_quiet().
class subgrid_migrator {
  public:
    explicit subgrid_migrator(runtime& rt);

    /// Install (or overwrite) a subgrid in `rank`'s store.
    void put(int rank, amr::node_key key, const amr::subgrid& sg);
    bool contains(int rank, amr::node_key key) const;
    /// Copy out a stored subgrid; false when absent.
    bool get(int rank, amr::node_key key, amr::subgrid& out) const;
    std::size_t count(int rank) const;

    /// Execute one migration schedule: for each record, remove the subgrid
    /// from the `from` store and deliver it to the `to` store — via a parcel
    /// through the reliability protocol when the ranks differ, locally
    /// otherwise. Asynchronous: call rt.wait_quiet() (or wait_quiet_for)
    /// before reading destination stores. Records whose source subgrid is
    /// missing throw octo::error (a schedule/store mismatch is a logic bug).
    void migrate(const std::vector<amr::migration_record>& schedule);

    migration_stats stats() const;

    // ---- elastic recovery (ISSUE 10) --------------------------------------

    /// The rank died: its store's memory is gone. Returns how many subgrids
    /// were lost (recovery must re-source them from the checkpoint chain).
    std::size_t drop_rank(int rank);

    /// Global rollback: clear every store and reinstall each leaf subgrid of
    /// the restored tree into its CURRENT owner's store (run the recovery
    /// repartition on the tree first). Survivors re-read the same chain the
    /// dead rank's share comes from, which is what makes the recovered run
    /// bit-identical to a never-killed restart from that checkpoint.
    /// Returns the number of subgrids installed.
    std::uint64_t reload(const amr::tree& restored);

  private:
    runtime& rt_;
    action_id install_action_ = 0;
    mutable std::mutex mutex_;
    /// stores_[rank]: subgrids this locality currently owns.
    std::vector<std::map<amr::node_key, amr::subgrid>> stores_;
    migration_stats stats_;
};

} // namespace octo::dist

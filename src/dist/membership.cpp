#include "dist/membership.hpp"

#include <utility>

#include "runtime/apex.hpp"
#include "support/assert.hpp"

namespace octo::dist {

membership::membership(runtime& rt, membership_params params)
    : rt_(rt), params_(params) {
    // pong first: the ping handler captures its id.
    pong_ = rt_.register_action("mem.pong", [this](int, iarchive a) {
        const auto round = a.read<std::uint64_t>();
        const int from = a.read<int>();
        std::lock_guard lock(mutex_);
        if (round == round_) {
            answered_.insert(from);
            ++stats_.pongs_received;
            cv_.notify_all();
        }
    });
    ping_ = rt_.register_action("mem.ping", [this](int here, iarchive a) {
        const auto round = a.read<std::uint64_t>();
        const int monitor = a.read<int>();
        // Running at all IS the liveness proof: a killed rank never gets
        // here (its parcelport drops the ping unacked, its pool is closed).
        oarchive out;
        out.write(round);
        out.write(here);
        rt_.apply(monitor, pong_, std::move(out));
    });
}

membership::~membership() {
    stop();
    // Drain straggler heartbeats so no pong can invoke a dangling handler.
    // Bounded: if a killed-but-undeclared rank still holds parcels inflight,
    // its state is cancelled here rather than waiting out the retry budget.
    if (!rt_.wait_quiet_for(4 * params_.death_timeout)) {
        for (int r : rt_.live_ranks()) {
            if (rt_.killed(r)) rt_.declare_dead(r);
        }
        (void)rt_.wait_quiet_for(4 * params_.death_timeout);
    }
}

std::vector<int> membership::probe() {
    const auto live = rt_.live_ranks();
    if (live.size() <= 1) return {};
    const int monitor = live.front();

    std::uint64_t round = 0;
    {
        std::lock_guard lock(mutex_);
        round = ++round_;
        answered_.clear();
        ++stats_.probes;
        stats_.pings_sent += live.size() - 1;
    }
    for (int r : live) {
        if (r == monitor) continue;
        oarchive a;
        a.write(round);
        a.write(monitor);
        rt_.apply(r, ping_, std::move(a));
    }

    // The timeout detector: a healthy round quiesces almost immediately
    // (every ping delivered, every pong acked); a killed rank leaves its
    // pings retransmitting into the void, so this expires at the bound.
    (void)rt_.wait_quiet_for(params_.death_timeout);

    std::vector<int> dead;
    {
        std::lock_guard lock(mutex_);
        for (int r : live) {
            if (r != monitor && answered_.count(r) == 0) dead.push_back(r);
        }
        stats_.deaths_declared += dead.size();
    }
    for (int r : dead) rt_.declare_dead(r);
    if (!dead.empty()) {
        // Cancelled retransmit state settles fast; bound the tail anyway.
        (void)rt_.wait_quiet_for(params_.death_timeout);
    }

    std::function<void(int)> cb;
    {
        std::lock_guard lock(mutex_);
        cb = on_death_;
    }
    if (cb) {
        for (int r : dead) cb(r);
    }
    return dead;
}

void membership::start() {
    {
        std::lock_guard lock(monitor_mutex_);
        OCTO_ASSERT_MSG(!monitor_.joinable(), "monitor already running");
        monitor_stop_ = false;
    }
    monitor_ = std::thread([this] { monitor_loop(); });
}

void membership::stop() {
    {
        std::lock_guard lock(monitor_mutex_);
        monitor_stop_ = true;
    }
    monitor_cv_.notify_all();
    if (monitor_.joinable()) monitor_.join();
}

void membership::monitor_loop() {
    for (;;) {
        {
            std::unique_lock lock(monitor_mutex_);
            monitor_cv_.wait_for(lock, params_.heartbeat_interval,
                                 [this] { return monitor_stop_; });
            if (monitor_stop_) return;
        }
        const auto dead = probe();
        if (!dead.empty()) rt::apex_count("mem.monitor_detections", dead.size());
    }
}

void membership::on_death(std::function<void(int)> cb) {
    std::lock_guard lock(mutex_);
    on_death_ = std::move(cb);
}

membership_stats membership::stats() const {
    std::lock_guard lock(mutex_);
    return stats_;
}

} // namespace octo::dist
